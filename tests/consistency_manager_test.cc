#include "repair/consistency_manager.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gdr {
namespace {

class ManagerFixture : public ::testing::Test {
 protected:
  ManagerFixture()
      : schema_(*Schema::Make({"STR", "CT", "STT", "ZIP"})), table_(schema_),
        rules_(schema_) {}

  void Append(const char* str, const char* ct, const char* stt,
              const char* zip) {
    ASSERT_TRUE(table_.AppendRow({str, ct, stt, zip}).ok());
  }

  void Build() {
    index_ = std::make_unique<ViolationIndex>(&table_, &rules_);
    generator_ =
        std::make_unique<UpdateGenerator>(index_.get(), &table_, &state_);
    manager_ = std::make_unique<ConsistencyManager>(
        index_.get(), &pool_, &state_, generator_.get());
  }

  Schema schema_;
  Table table_;
  RuleSet rules_;
  RepairState state_;
  UpdatePool pool_;
  std::unique_ptr<ViolationIndex> index_;
  std::unique_ptr<UpdateGenerator> generator_;
  std::unique_ptr<ConsistencyManager> manager_;
};

TEST_F(ManagerFixture, InitializeSeedsPoolAndDirtySet) {
  ASSERT_TRUE(
      rules_.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City").ok());
  Append("Main St", "Wrong City", "IN", "46360");
  Append("Main St", "Michigan City", "IN", "46360");
  Build();
  EXPECT_EQ(manager_->Initialize(), 1u);
  EXPECT_TRUE(manager_->IsDirty(0));
  EXPECT_FALSE(manager_->IsDirty(1));
  // A suggestion exists for the dirty city cell.
  const AttrId ct = schema_.FindAttr("CT");
  EXPECT_TRUE(pool_.Contains(CellKey{0, ct}));
}

TEST_F(ManagerFixture, ConfirmAppliesAndCleans) {
  ASSERT_TRUE(
      rules_.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City").ok());
  Append("Main St", "Wrong City", "IN", "46360");
  Build();
  manager_->Initialize();
  const AttrId ct = schema_.FindAttr("CT");
  const Update update = *pool_.Get(CellKey{0, ct});

  const std::vector<AppliedChange> changes =
      manager_->ApplyFeedback(update, Feedback::kConfirm);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_FALSE(changes[0].forced);
  EXPECT_EQ(table_.at(0, ct), "Michigan City");
  EXPECT_FALSE(manager_->HasDirtyRows());
  EXPECT_TRUE(pool_.empty());
  // Confirmed cells are frozen.
  EXPECT_FALSE(state_.IsChangeable(CellKey{0, ct}));
}

TEST_F(ManagerFixture, RejectPreventsAndRegenerates) {
  ASSERT_TRUE(rules_.AddRuleFromString("phi5", "STR, CT -> ZIP").ok());
  Append("Main St", "Fort Wayne", "IN", "46802");
  Append("Main St", "Fort Wayne", "IN", "46803");
  Append("Main St", "Fort Wayne", "IN", "46804");
  Build();
  manager_->Initialize();
  const AttrId zip = schema_.FindAttr("ZIP");
  const Update first = *pool_.Get(CellKey{2, zip});

  EXPECT_TRUE(manager_->ApplyFeedback(first, Feedback::kReject).empty());
  EXPECT_TRUE(state_.IsPrevented(CellKey{2, zip}, first.value));
  // A different suggestion replaces the rejected one.
  const auto second = pool_.Get(CellKey{2, zip});
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(second->value, first.value);
}

TEST_F(ManagerFixture, RetainFreezesCell) {
  ASSERT_TRUE(
      rules_.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City").ok());
  Append("Main St", "Wrong City", "IN", "46360");
  Build();
  manager_->Initialize();
  const AttrId ct = schema_.FindAttr("CT");
  const Update update = *pool_.Get(CellKey{0, ct});
  manager_->ApplyFeedback(update, Feedback::kRetain);
  EXPECT_FALSE(pool_.Contains(CellKey{0, ct}));
  EXPECT_FALSE(state_.IsChangeable(CellKey{0, ct}));
  // Still dirty: the rule is violated but the cell is now untouchable.
  EXPECT_TRUE(manager_->IsDirty(0));
}

TEST_F(ManagerFixture, ForcedCascadeOnFrozenLhs) {
  // Step 3(a)i: when every LHS cell of a violated constant rule is
  // confirmed, the RHS is entailed and applied automatically.
  ASSERT_TRUE(
      rules_.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City").ok());
  ASSERT_TRUE(rules_.AddRuleFromString("phi2", "ZIP=46391 -> CT=Westville")
                  .ok());
  Append("Main St", "Westville", "IN", "46391");  // clean
  Append("Main St", "Westville", "IN", "46360");  // zip surely wrong
  Build();
  manager_->Initialize();
  const AttrId zip = schema_.FindAttr("ZIP");
  const AttrId ct = schema_.FindAttr("CT");

  // The user confirms t1's zip really is 46360. The cell value does not
  // change, but the freeze completes phi1's evidence: the LHS is frozen,
  // the rule is still violated, so CT := 'Michigan City' is entailed and
  // cascades (step 3(a)i applied to the freeze).
  std::vector<AppliedChange> changes =
      manager_->ApplyUserValue(1, zip, table_.InternValue(zip, "46360"));
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_TRUE(changes[0].forced);
  EXPECT_EQ(table_.at(1, ct), "Michigan City");
  EXPECT_FALSE(manager_->IsDirty(1));
}

TEST_F(ManagerFixture, ForcedCascadeAppliesRhsConstant) {
  ASSERT_TRUE(
      rules_.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City").ok());
  Append("Main St", "Wrong City", "IN", "46391");
  Build();
  manager_->Initialize();
  const AttrId zip = schema_.FindAttr("ZIP");
  const AttrId ct = schema_.FindAttr("CT");
  // Clean row (no violations yet). The user explicitly sets the zip to
  // 46360 — now phi1 is violated, its LHS (the zip) is frozen by the
  // confirmation, and CT must cascade to the pattern constant.
  std::vector<AppliedChange> changes =
      manager_->ApplyUserValue(0, zip, table_.InternValue(zip, "46360"));
  ASSERT_EQ(changes.size(), 2u);
  EXPECT_TRUE(changes[1].forced);
  EXPECT_EQ(table_.at(0, ct), "Michigan City");
  EXPECT_FALSE(manager_->HasDirtyRows());
}

TEST_F(ManagerFixture, VariableRulePartnersRevisited) {
  ASSERT_TRUE(rules_.AddRuleFromString("phi5", "STR, CT -> ZIP").ok());
  Append("Main St", "Fort Wayne", "IN", "46802");
  Append("Main St", "Fort Wayne", "IN", "46802");
  Append("Main St", "Fort Wayne", "IN", "46803");  // outlier
  Build();
  manager_->Initialize();
  const AttrId zip = schema_.FindAttr("ZIP");
  // All three are dirty; pool suggests fixing the outlier to the majority.
  EXPECT_EQ(manager_->dirty_count(), 3u);
  const Update fix = *pool_.Get(CellKey{2, zip});
  manager_->ApplyFeedback(fix, Feedback::kConfirm);
  // Everyone is clean, and the partner suggestions were retired.
  EXPECT_FALSE(manager_->HasDirtyRows());
  EXPECT_FALSE(pool_.Contains(CellKey{0, zip}));
  EXPECT_FALSE(pool_.Contains(CellKey{1, zip}));
}

// Invariant property test (Appendix A.5): after an arbitrary feedback
// sequence, (i) the dirty set equals the index's dirty rows, and (ii) no
// pooled update is stale (its cell generates the same suggestion afresh).
class ManagerInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(ManagerInvariantTest, InvariantsHoldUnderRandomFeedback) {
  Schema schema = *Schema::Make({"STR", "CT", "STT", "ZIP"});
  Table table(schema);
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const char* streets[] = {"Main St", "Oak Ave"};
  const char* cities[] = {"Fort Wayne", "Westville", "Michigan Cty"};
  const char* zips[] = {"46825", "46391", "46360"};
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(table
                    .AppendRow({streets[rng.NextBounded(2)],
                                cities[rng.NextBounded(3)], "IN",
                                zips[rng.NextBounded(3)]})
                    .ok());
  }
  RuleSet rules(schema);
  ASSERT_TRUE(rules.AddRuleFromString("c1", "ZIP=46360 -> CT=Michigan City")
                  .ok());
  ASSERT_TRUE(rules.AddRuleFromString("c2", "ZIP=46391 -> CT=Westville").ok());
  ASSERT_TRUE(rules.AddRuleFromString("v1", "STR, CT -> ZIP").ok());

  ViolationIndex index(&table, &rules);
  RepairState state;
  UpdatePool pool;
  UpdateGenerator generator(&index, &table, &state);
  ConsistencyManager manager(&index, &pool, &state, &generator);
  manager.Initialize();

  for (int step = 0; step < 120 && !pool.empty(); ++step) {
    const std::vector<Update> all = pool.All();
    const Update& update = all[rng.NextBounded(all.size())];
    const Feedback feedback = static_cast<Feedback>(rng.NextBounded(3));
    manager.ApplyFeedback(update, feedback);

    // Invariant (i): dirty set matches ground reality.
    EXPECT_EQ(manager.DirtyRows(), index.DirtyRows());
  }

  // Invariant (ii), as the paper's RevisitList actually guarantees it:
  // every pooled update targets a changeable cell, suggests a value that
  // is neither the current one nor prevented, and is justified by a rule
  // the row still violates. (Scenario-3 suggestions may additionally
  // depend on projection buckets that drift when unrelated rows change;
  // like the paper, those are re-validated lazily when consumed, not
  // eagerly revisited.)
  for (const Update& update : pool.All()) {
    const CellKey cell = update.cell();
    EXPECT_TRUE(state.IsChangeable(cell));
    EXPECT_FALSE(state.IsPrevented(cell, update.value));
    EXPECT_NE(update.value, table.id_at(update.row, update.attr));
    bool justified = false;
    for (RuleId rid : index.ViolatedRules(update.row)) {
      if (rules.rule(rid).Mentions(update.attr)) {
        justified = true;
        break;
      }
    }
    EXPECT_TRUE(justified) << "row " << update.row << " attr " << update.attr;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ManagerInvariantTest, ::testing::Range(1, 11));

}  // namespace
}  // namespace gdr
