// The acceptance contract of the session redesign: GdrEngine::Run() (the
// compatibility shim) and a hand-pumped GdrSession produce bit-identical
// GdrStats, repaired tables, and quality curves for every strategy at
// fixed seeds — and a Snapshot() taken mid-session (mid-group, mid-batch,
// post-retrain) Restore()s to the identical final result.
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/session.h"
#include "workload/registry.h"
#include "sim/experiment.h"
#include "sim/oracle.h"

namespace gdr {
namespace {

constexpr Strategy kAllStrategies[] = {
    Strategy::kGdr,           Strategy::kGdrSLearning,
    Strategy::kGdrNoLearning, Strategy::kActiveLearning,
    Strategy::kGreedy,        Strategy::kRandomRanking,
};

Dataset SmallDataset() {
  return *WorkloadRegistry::Global().Resolve("dataset1:records=600,seed=21");
}

void ExpectSameStats(const GdrStats& a, const GdrStats& b,
                     const std::string& label) {
  EXPECT_EQ(a.initial_dirty, b.initial_dirty) << label;
  EXPECT_EQ(a.user_feedback, b.user_feedback) << label;
  EXPECT_EQ(a.user_confirms, b.user_confirms) << label;
  EXPECT_EQ(a.user_rejects, b.user_rejects) << label;
  EXPECT_EQ(a.user_retains, b.user_retains) << label;
  EXPECT_EQ(a.user_suggested_values, b.user_suggested_values) << label;
  EXPECT_EQ(a.learner_decisions, b.learner_decisions) << label;
  EXPECT_EQ(a.learner_confirms, b.learner_confirms) << label;
  EXPECT_EQ(a.forced_repairs, b.forced_repairs) << label;
  EXPECT_EQ(a.outer_iterations, b.outer_iterations) << label;
}

// Answers one suggestion with the oracle (collecting a volunteered value
// after a reject, like the shim does). Returns false on session error.
void AnswerOne(GdrSession* session, const SuggestedUpdate& s,
               UserOracle* oracle) {
  if (!session->IsLive(s.update_id)) return;
  const Feedback feedback = oracle->GetFeedback(session->table(), s.update);
  std::optional<std::string> volunteered;
  if (feedback == Feedback::kReject) {
    volunteered = oracle->SuggestValue(session->table(), s.update);
  }
  ASSERT_TRUE(
      session->SubmitFeedback(s.update_id, feedback, volunteered).ok());
}

TEST(SessionDifferentialTest, ShimAndHandPumpedSessionAreBitIdentical) {
  const Dataset dataset = SmallDataset();
  for (Strategy strategy : kAllStrategies) {
    GdrOptions options;
    options.strategy = strategy;
    options.feedback_budget = 100;
    options.seed = 9;

    UserOracleOptions oracle_options;
    oracle_options.volunteer_probability = 0.3;
    oracle_options.seed = 91;

    // A: the legacy push loop through the Run() shim.
    Table table_a = dataset.dirty;
    UserOracle oracle_a(&dataset.clean, oracle_options);
    GdrEngine engine_a(&table_a, &dataset.rules, &oracle_a, options);
    ASSERT_TRUE(engine_a.Initialize().ok());
    std::vector<std::size_t> callbacks_a;
    ASSERT_TRUE(engine_a
                    .Run([&callbacks_a](const GdrEngine&, std::size_t f) {
                      callbacks_a.push_back(f);
                    })
                    .ok());

    // B: the pull API, hand-pumped batch by batch.
    Table table_b = dataset.dirty;
    UserOracle oracle_b(&dataset.clean, oracle_options);
    GdrSession session(&table_b, &dataset.rules, options);
    std::vector<std::size_t> callbacks_b;
    session.SetProgressCallback(
        [&callbacks_b](const GdrEngine&, std::size_t f) {
          callbacks_b.push_back(f);
        });
    ASSERT_TRUE(session.Start().ok());
    while (session.state() != SessionState::kDone) {
      auto batch = session.NextBatch();
      ASSERT_TRUE(batch.ok());
      for (const SuggestedUpdate& s : *batch) {
        AnswerOne(&session, s, &oracle_b);
      }
    }

    const std::string label = StrategyName(strategy);
    ExpectSameStats(engine_a.stats(), session.stats(), label);
    EXPECT_EQ(*table_a.CountDifferingCells(table_b), 0u) << label;
    EXPECT_EQ(callbacks_a, callbacks_b) << label;
    EXPECT_EQ(engine_a.index().TotalViolations(),
              session.engine().index().TotalViolations())
        << label;
    EXPECT_EQ(engine_a.pool().size(), session.engine().pool().size())
        << label;
    EXPECT_EQ(oracle_a.feedback_given(), oracle_b.feedback_given()) << label;
    EXPECT_EQ(oracle_a.values_volunteered(), oracle_b.values_volunteered())
        << label;
  }
}

TEST(SessionDifferentialTest, ExperimentDriversAreBitIdentical) {
  const Dataset dataset = SmallDataset();
  for (Strategy strategy : kAllStrategies) {
    ExperimentConfig config;
    config.strategy = strategy;
    config.feedback_budget = 80;
    config.seed = 5;
    config.sample_every = 10;
    config.volunteer_probability = 0.2;

    config.driver = ExperimentDriver::kEngineRun;
    auto via_run = RunStrategyExperiment(dataset, config);
    config.driver = ExperimentDriver::kSessionPump;
    auto via_session = RunStrategyExperiment(dataset, config);
    ASSERT_TRUE(via_run.ok());
    ASSERT_TRUE(via_session.ok());

    const std::string label = StrategyName(strategy);
    ExpectSameStats(via_run->stats, via_session->stats, label);
    EXPECT_EQ(via_run->final_loss, via_session->final_loss) << label;
    EXPECT_EQ(via_run->remaining_violations,
              via_session->remaining_violations)
        << label;
    EXPECT_EQ(via_run->accuracy.Precision(), via_session->accuracy.Precision())
        << label;
    EXPECT_EQ(via_run->accuracy.Recall(), via_session->accuracy.Recall())
        << label;
    ASSERT_EQ(via_run->curve.size(), via_session->curve.size()) << label;
    for (std::size_t i = 0; i < via_run->curve.size(); ++i) {
      EXPECT_EQ(via_run->curve[i].feedback, via_session->curve[i].feedback);
      EXPECT_EQ(via_run->curve[i].loss, via_session->curve[i].loss);
      EXPECT_EQ(via_run->curve[i].improvement_pct,
                via_session->curve[i].improvement_pct);
    }
  }
}

// Runs a session to completion, optionally interrupting once: after
// `interrupt_after` labels have been applied, the *current batch* is left
// half-answered (one more suggestion submitted, the rest outstanding) and
// the session is snapshotted mid-batch. The snapshot is serialized,
// parsed back, restored into a brand-new session over a fresh copy of the
// dirty table, and driven to completion from the outstanding batch
// onward. Returns the final stats/table of whichever session finished.
struct FinalState {
  GdrStats stats;
  Table table;
  std::int64_t violations = 0;
};

FinalState RunWithOptionalRestart(const Dataset& dataset,
                                  const GdrOptions& options,
                                  std::optional<std::size_t> interrupt_after) {
  // Volunteering must be off for a cross-restart oracle to be stateless;
  // GetFeedback answers purely from ground truth.
  Table table(dataset.dirty);
  UserOracle oracle(&dataset.clean);
  auto session = std::make_unique<GdrSession>(&table, &dataset.rules, options);
  EXPECT_TRUE(session->Start().ok());

  std::optional<SessionSnapshot> snapshot;
  while (session->state() != SessionState::kDone && !snapshot.has_value()) {
    auto batch = session->NextBatch();
    EXPECT_TRUE(batch.ok());
    for (const SuggestedUpdate& s : *batch) {
      AnswerOne(session.get(), s, &oracle);
      if (interrupt_after.has_value() &&
          session->stats().user_feedback >= *interrupt_after) {
        snapshot = session->Snapshot();  // mid-batch, mid-group
        break;
      }
    }
  }

  if (snapshot.has_value()) {
    // Simulate the process restart: serialize, drop everything, reload the
    // original dirty table, parse, restore, resume.
    const std::string wire = snapshot->Serialize();
    session.reset();
    Table reloaded(dataset.dirty);
    auto parsed = SessionSnapshot::Deserialize(wire);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    auto resumed =
        std::make_unique<GdrSession>(&reloaded, &dataset.rules, options);
    EXPECT_TRUE(resumed->Restore(*parsed).ok());
    UserOracle fresh_oracle(&dataset.clean);
    // Finish the interrupted batch first, then pump normally.
    for (const SuggestedUpdate& s : resumed->Outstanding()) {
      AnswerOne(resumed.get(), s, &fresh_oracle);
    }
    EXPECT_TRUE(PumpSession(resumed.get(), &fresh_oracle).ok());
    return FinalState{resumed->stats(), reloaded,
                      resumed->engine().index().TotalViolations()};
  }
  return FinalState{session->stats(), table,
                    session->engine().index().TotalViolations()};
}

TEST(SessionDifferentialTest, SnapshotRestoreMidSessionResumesIdentically) {
  const Dataset dataset = SmallDataset();
  for (Strategy strategy :
       {Strategy::kGdr, Strategy::kGdrNoLearning, Strategy::kActiveLearning,
        Strategy::kRandomRanking}) {
    GdrOptions options;
    options.strategy = strategy;
    options.feedback_budget = 100;
    options.seed = 9;

    const FinalState uninterrupted =
        RunWithOptionalRestart(dataset, options, std::nullopt);
    // Interrupt at 52 labels: with n_s = 5 that lands mid-batch, well past
    // the 25-example training threshold for learning strategies, so the
    // snapshot carries trained forests (post-retrain) and a half-answered
    // group (mid-group).
    const FinalState restarted =
        RunWithOptionalRestart(dataset, options, 52);

    const std::string label = StrategyName(strategy);
    ExpectSameStats(uninterrupted.stats, restarted.stats, label);
    EXPECT_EQ(*uninterrupted.table.CountDifferingCells(restarted.table), 0u)
        << label;
    EXPECT_EQ(uninterrupted.violations, restarted.violations) << label;
  }
}

TEST(SessionDifferentialTest, SnapshotAtEveryTenthLabelRestoresExactly) {
  // Tighter variant on one strategy: interrupt at several loop positions
  // (group starts, mid-batch, pre/post learner take-over) and require the
  // identical end state each time.
  const Dataset dataset = SmallDataset();
  GdrOptions options;
  options.strategy = Strategy::kGdr;
  options.feedback_budget = 60;
  options.seed = 77;
  const FinalState reference =
      RunWithOptionalRestart(dataset, options, std::nullopt);
  for (std::size_t cut : {1u, 10u, 30u, 59u}) {
    const FinalState restarted = RunWithOptionalRestart(dataset, options, cut);
    ExpectSameStats(reference.stats, restarted.stats,
                    "cut=" + std::to_string(cut));
    EXPECT_EQ(*reference.table.CountDifferingCells(restarted.table), 0u)
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace gdr
