#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gdr {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  auto a = pool.Submit([] { return 7; });
  auto b = pool.Submit([] { return std::string("ok"); });
  EXPECT_EQ(a.get(), 7);
  EXPECT_EQ(b.get(), "ok");
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ResolveThreadCountConvention) {
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);  // 0 = hardware
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(6), 6u);
}

TEST(ThreadPoolTest, DrainsPendingTasksBeforeShutdown) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] { ++done; });
    }
  }  // destructor must wait for all 64
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSmallAndEmptyRanges) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "must not be called"; });
  std::vector<std::atomic<int>> hits(2);
  pool.ParallelFor(2, [&hits](std::size_t i) { ++hits[i]; });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ThreadPoolTest, ParallelForDeterministicOutputSlots) {
  // Same computation at 1, 2, and 8 workers: identical output vectors.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> out(257);
    pool.ParallelFor(out.size(), [&out](std::size_t i) {
      out[i] = static_cast<double>(i) * 0.25 + 1.0 / (1.0 + i);
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(100,
                                [](std::size_t i) {
                                  if (i == 57) throw std::runtime_error("57");
                                }),
               std::runtime_error);
  // The pool survives and keeps working.
  EXPECT_EQ(pool.Submit([] { return 3; }).get(), 3);
}

TEST(ThreadPoolTest, ParallelForSum) {
  ThreadPool pool(3);
  std::vector<long> parts(500);
  pool.ParallelFor(parts.size(), [&parts](std::size_t i) {
    parts[i] = static_cast<long>(i);
  });
  EXPECT_EQ(std::accumulate(parts.begin(), parts.end(), 0L), 499L * 500 / 2);
}

// The worker increments tasks_completed() just after the task's future is
// fulfilled, so a caller that just observed the result may be one step
// ahead of the counter. Spin briefly until it catches up.
void WaitForCompleted(const ThreadPool& pool, std::uint64_t expected) {
  for (int spin = 0; spin < 100000 && pool.tasks_completed() < expected;
       ++spin) {
    std::this_thread::yield();
  }
}

TEST(ThreadPoolTest, CountsCompletedSubmittedTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.tasks_completed(), 0u);
  EXPECT_EQ(pool.queue_depth(), 0u);

  std::vector<std::future<int>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(pool.Submit([i] { return i; }));
  }
  for (auto& future : futures) (void)future.get();
  // The worker bumps the counter just *after* fulfilling the future, so
  // give the last increment a moment to land.
  WaitForCompleted(pool, 10);
  EXPECT_EQ(pool.tasks_completed(), 10u);
  // Every future resolved, so nothing can still be queued.
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, CompletedCountSurvivesThrowingTasks) {
  ThreadPool pool(1);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("x"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // A task that threw still *completed* (the exception lives in the
  // future); the counter must not stall.
  WaitForCompleted(pool, 1);
  EXPECT_EQ(pool.tasks_completed(), 1u);
  (void)pool.Submit([] { return 1; }).get();
  WaitForCompleted(pool, 2);
  EXPECT_EQ(pool.tasks_completed(), 2u);
}

TEST(ThreadPoolTest, ParallelForCountsOnlyPoolDrivenWork) {
  ThreadPool pool(2);
  std::atomic<int> touched{0};
  pool.ParallelFor(100, [&touched](std::size_t) { ++touched; });
  EXPECT_EQ(touched.load(), 100);
  // ParallelFor submits per-slot driver tasks, not one task per index —
  // the counter reflects pool-executed callables, bounded by the worker
  // count per call (the caller's own slot is not a pool task).
  EXPECT_LE(pool.tasks_completed(), 2u);
}

}  // namespace
}  // namespace gdr
