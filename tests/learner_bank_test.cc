#include "core/learner_bank.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

class LearnerBankFixture : public ::testing::Test {
 protected:
  LearnerBankFixture()
      : schema_(*Schema::Make({"SRC", "CT", "ZIP"})), table_(schema_),
        rules_(schema_) {
    // Two sources; source H2 mistypes cities.
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(table_
                      .AppendRow({i % 2 == 0 ? "H1" : "H2",
                                  i % 2 == 0 ? "Fort Wayne" : "FortWayne" +
                                                                  std::to_string(i),
                                  "46802"})
                      .ok());
    }
    EXPECT_TRUE(
        rules_.AddRuleFromString("phi", "ZIP=46802 -> CT=Fort Wayne").ok());
    index_ = std::make_unique<ViolationIndex>(&table_, &rules_);
    LearnerBankOptions options;
    options.min_training_examples = 4;
    options.seed = 5;
    bank_ = std::make_unique<LearnerBank>(&table_, index_.get(), options);
    fort_wayne_ = table_.InternValue(1, "Fort Wayne");
  }

  Update CityUpdate(RowId row) const {
    return Update{row, 1, fort_wayne_, 0.8};
  }

  Schema schema_;
  Table table_;
  RuleSet rules_;
  std::unique_ptr<ViolationIndex> index_;
  std::unique_ptr<LearnerBank> bank_;
  ValueId fort_wayne_;
};

TEST_F(LearnerBankFixture, EncodeLayout) {
  const std::vector<double> features = bank_->Encode(CityUpdate(1));
  // 3 attribute values + suggested + 6 relationship/consistency features.
  ASSERT_EQ(features.size(), 3u + 7u);
  EXPECT_EQ(features[0], static_cast<double>(table_.id_at(1, 0)));
  EXPECT_EQ(features[3], static_cast<double>(fort_wayne_));
  // Repair score feature is carried through.
  EXPECT_DOUBLE_EQ(features[5], 0.8);
  // violations_now for a dirty row is >= 1, violations_after is 0 when the
  // fix resolves everything.
  EXPECT_GE(features[8], 1.0);
  EXPECT_DOUBLE_EQ(features[9], 0.0);
}

TEST_F(LearnerBankFixture, UntrainedBelowThreshold) {
  ASSERT_TRUE(bank_->AddFeedback(CityUpdate(1), Feedback::kConfirm).ok());
  ASSERT_TRUE(bank_->Retrain(1).ok());
  EXPECT_FALSE(bank_->IsTrained(1));
  EXPECT_EQ(bank_->TrainingExamples(1), 1u);
  // Untrained models fall back to the repair score for p-tilde.
  EXPECT_DOUBLE_EQ(bank_->ConfirmProbability(CityUpdate(1)), 0.8);
}

TEST_F(LearnerBankFixture, TrainsAtThresholdAndPredicts) {
  for (RowId row : {RowId{1}, RowId{3}, RowId{5}, RowId{7}, RowId{9}}) {
    ASSERT_TRUE(bank_->AddFeedback(CityUpdate(row), Feedback::kConfirm).ok());
  }
  ASSERT_TRUE(bank_->Retrain(1).ok());
  ASSERT_TRUE(bank_->IsTrained(1));
  EXPECT_EQ(bank_->PredictFeedback(CityUpdate(11)), Feedback::kConfirm);
  EXPECT_GT(bank_->ConfirmProbability(CityUpdate(11)), 0.5);
  EXPECT_GE(bank_->Uncertainty(CityUpdate(11)), 0.0);
}

TEST_F(LearnerBankFixture, RetrainIsNoOpWithoutNewFeedback) {
  for (RowId row : {RowId{1}, RowId{3}, RowId{5}, RowId{7}}) {
    ASSERT_TRUE(bank_->AddFeedback(CityUpdate(row), Feedback::kConfirm).ok());
  }
  ASSERT_TRUE(bank_->Retrain(1).ok());
  ASSERT_TRUE(bank_->Retrain(1).ok());  // cheap second call
  EXPECT_TRUE(bank_->IsTrained(1));
}

TEST_F(LearnerBankFixture, PerAttributeModelsAreIndependent) {
  for (RowId row : {RowId{1}, RowId{3}, RowId{5}, RowId{7}}) {
    ASSERT_TRUE(bank_->AddFeedback(CityUpdate(row), Feedback::kConfirm).ok());
  }
  ASSERT_TRUE(bank_->Retrain(1).ok());
  EXPECT_TRUE(bank_->IsTrained(1));
  EXPECT_FALSE(bank_->IsTrained(0));
  EXPECT_FALSE(bank_->IsTrained(2));
  EXPECT_EQ(bank_->TrainingExamples(2), 0u);
}

TEST_F(LearnerBankFixture, ReliabilityGatePerClass) {
  for (RowId row : {RowId{1}, RowId{3}, RowId{5}, RowId{7}}) {
    ASSERT_TRUE(bank_->AddFeedback(CityUpdate(row), Feedback::kConfirm).ok());
  }
  ASSERT_TRUE(bank_->Retrain(1).ok());
  // No outcomes recorded yet -> not reliable despite being trained.
  EXPECT_FALSE(bank_->IsReliable(1, Feedback::kConfirm, 0.8));

  for (int i = 0; i < 8; ++i) {
    bank_->RecordPredictionOutcome(1, Feedback::kConfirm, true);
  }
  EXPECT_TRUE(bank_->IsReliable(1, Feedback::kConfirm, 0.8));
  // Other classes have no outcomes and stay gated.
  EXPECT_FALSE(bank_->IsReliable(1, Feedback::kReject, 0.8));

  // A run of mistakes drops the rolling accuracy below the bar.
  for (int i = 0; i < 10; ++i) {
    bank_->RecordPredictionOutcome(1, Feedback::kConfirm, false);
  }
  EXPECT_LT(bank_->RollingAccuracy(1, Feedback::kConfirm), 0.8);
  EXPECT_FALSE(bank_->IsReliable(1, Feedback::kConfirm, 0.8));
}

TEST_F(LearnerBankFixture, RollingAccuracyWindowForgets) {
  // 20 failures followed by 20 successes: the window only sees successes.
  for (int i = 0; i < 20; ++i) {
    bank_->RecordPredictionOutcome(2, Feedback::kRetain, false);
  }
  for (int i = 0; i < 20; ++i) {
    bank_->RecordPredictionOutcome(2, Feedback::kRetain, true);
  }
  EXPECT_DOUBLE_EQ(bank_->RollingAccuracy(2, Feedback::kRetain), 1.0);
}

}  // namespace
}  // namespace gdr
