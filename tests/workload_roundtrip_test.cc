// Round-trip identity: exporting a generated workload to files and
// reloading it through the csv: factory must change NOTHING downstream —
// RunStrategyExperiment produces bit-identical stats and curves. This is
// the strongest guarantee the file loader can give: value-dictionary
// interning (the generators intern clean row-major, then dirty edits in
// ascending row order) is reproduced exactly, so even id-based tie-breaks
// in update generation, grouping, VOI ranking, and learner features agree.
#include <cstdio>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "workload/file_workload.h"
#include "workload/registry.h"

namespace gdr {
namespace {

// Serializes every deterministic field of an ExperimentResult (timings and
// wall clock excluded — they are the only run-to-run nondeterminism).
std::string Fingerprint(const ExperimentResult& result) {
  std::ostringstream out;
  out.precision(17);
  out << result.strategy_name << '|' << result.stats.initial_dirty << '|'
      << result.stats.user_feedback << '|' << result.stats.user_confirms
      << '|' << result.stats.user_rejects << '|' << result.stats.user_retains
      << '|' << result.stats.user_suggested_values << '|'
      << result.stats.learner_decisions << '|'
      << result.stats.learner_confirms << '|' << result.stats.forced_repairs
      << '|' << result.stats.outer_iterations << '|' << result.initial_loss
      << '|' << result.final_loss << '|' << result.final_improvement_pct
      << '|' << result.remaining_violations << '|'
      << result.accuracy.updated_cells << '|'
      << result.accuracy.correctly_updated_cells << '|'
      << result.accuracy.initially_incorrect_cells << '\n';
  for (const CurvePoint& point : result.curve) {
    out << point.feedback << ',' << point.improvement_pct << ',' << point.loss
        << ';';
  }
  return out.str();
}

std::string ExperimentFingerprints(const Dataset& dataset) {
  std::string out;
  for (const Strategy strategy :
       {Strategy::kGdr, Strategy::kGdrNoLearning, Strategy::kGreedy}) {
    ExperimentConfig config;
    config.strategy = strategy;
    config.feedback_budget = 120;
    config.seed = 5;
    config.sample_every = 10;
    auto result = RunStrategyExperiment(dataset, config);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (result.ok()) out += Fingerprint(*result);
  }
  auto heuristic = RunHeuristicExperiment(dataset);
  EXPECT_TRUE(heuristic.ok());
  if (heuristic.ok()) out += Fingerprint(*heuristic);
  return out;
}

class WorkloadRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadRoundTripTest, ExportThenLoadIsExperimentIdentical) {
  const auto original = WorkloadRegistry::Global().Resolve(GetParam());
  ASSERT_TRUE(original.ok()) << original.status().ToString();

  const auto dir = std::filesystem::temp_directory_path() /
                   ("gdr_roundtrip_" + original->name);
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(ExportWorkload(*original, dir.string()).ok());

  const auto reloaded =
      WorkloadRegistry::Global().Resolve(CsvWorkloadSpec(dir.string()));
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  // Structural identity first (faster failure diagnosis than fingerprints):
  // same cells, same rules, same per-attribute interned domains.
  ASSERT_TRUE(reloaded->clean.schema() == original->clean.schema());
  ASSERT_EQ(reloaded->dirty.num_rows(), original->dirty.num_rows());
  EXPECT_EQ(*reloaded->clean.CountDifferingCells(original->clean), 0u);
  EXPECT_EQ(*reloaded->dirty.CountDifferingCells(original->dirty), 0u);
  ASSERT_EQ(reloaded->rules.size(), original->rules.size());
  for (std::size_t attr = 0; attr < original->dirty.num_attrs(); ++attr) {
    EXPECT_EQ(reloaded->dirty.DomainSize(static_cast<AttrId>(attr)),
              original->dirty.DomainSize(static_cast<AttrId>(attr)))
        << "interned domain of attr " << attr << " diverged";
  }

  // The actual acceptance bar: identical experiment fingerprints across
  // learning and non-learning strategies plus the heuristic baseline.
  EXPECT_EQ(ExperimentFingerprints(*original),
            ExperimentFingerprints(*reloaded));
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Builtins, WorkloadRoundTripTest,
                         ::testing::Values("dataset1:records=600,seed=33",
                                           "dataset2:records=700,seed=44",
                                           "figure1"),
                         [](const auto& info) {
                           const std::string spec = info.param;
                           return spec.substr(0, spec.find(':'));
                         });

}  // namespace
}  // namespace gdr
