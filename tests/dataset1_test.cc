#include "sim/dataset1.h"

#include <gtest/gtest.h>

#include "cfd/violation_index.h"

namespace gdr {
namespace {

TEST(Dataset1Test, SchemaMatchesPaperAttributeSubset) {
  Dataset dataset = *GenerateDataset1({.num_records = 200, .seed = 1});
  EXPECT_EQ(dataset.clean.schema().attribute_names(),
            (std::vector<std::string>{
                "PatientID", "Age", "Sex", "Classification", "Complaint",
                "HospitalName", "StreetAddress", "City", "Zip", "State",
                "VisitDate"}));
  EXPECT_EQ(dataset.clean.num_rows(), 200u);
  EXPECT_EQ(dataset.dirty.num_rows(), 200u);
}

TEST(Dataset1Test, CleanInstanceSatisfiesAllRules) {
  Dataset dataset = *GenerateDataset1({.num_records = 2000, .seed = 2});
  Table clean = dataset.clean;
  ViolationIndex index(&clean, &dataset.rules);
  EXPECT_EQ(index.TotalViolations(), 0);
  EXPECT_TRUE(index.DirtyRows().empty());
}

TEST(Dataset1Test, DirtyFractionNearThirtyPercent) {
  Dataset dataset = *GenerateDataset1({.num_records = 5000, .seed = 3});
  const double fraction =
      static_cast<double>(dataset.corrupted_tuples) / 5000.0;
  EXPECT_GT(fraction, 0.18);
  EXPECT_LT(fraction, 0.42);
}

TEST(Dataset1Test, CorruptionIsDetectableMostly) {
  Dataset dataset = *GenerateDataset1({.num_records = 3000, .seed = 4});
  Table dirty = dataset.dirty;
  ViolationIndex index(&dirty, &dataset.rules);
  // Dirty rows include corrupted tuples plus their variable-rule partners.
  EXPECT_GT(index.DirtyRows().size(), dataset.corrupted_tuples / 2);
}

TEST(Dataset1Test, ErrorScaleZeroMeansClean) {
  Dataset1Options options;
  options.num_records = 500;
  options.error_scale = 0.0;
  Dataset dataset = *GenerateDataset1(options);
  EXPECT_EQ(dataset.corrupted_tuples, 0u);
  auto diff = dataset.clean.CountDifferingCells(dataset.dirty);
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(*diff, 0u);
}

TEST(Dataset1Test, DeterministicPerSeed) {
  Dataset a = *GenerateDataset1({.num_records = 300, .seed = 5});
  Dataset b = *GenerateDataset1({.num_records = 300, .seed = 5});
  auto clean_diff = a.clean.CountDifferingCells(b.clean);
  auto dirty_diff = a.dirty.CountDifferingCells(b.dirty);
  EXPECT_EQ(*clean_diff, 0u);
  EXPECT_EQ(*dirty_diff, 0u);
  EXPECT_EQ(a.rules.size(), b.rules.size());
}

TEST(Dataset1Test, DifferentSeedsProduceDifferentData) {
  Dataset a = *GenerateDataset1({.num_records = 300, .seed = 6});
  Dataset b = *GenerateDataset1({.num_records = 300, .seed = 7});
  auto diff = a.clean.CountDifferingCells(b.clean);
  ASSERT_TRUE(diff.ok());
  EXPECT_GT(*diff, 0u);
}

TEST(Dataset1Test, RuleFamilyShape) {
  Dataset dataset = *GenerateDataset1({.num_records = 100, .seed = 8});
  // One variable rule (street, city -> zip); the rest constant zip rules.
  std::size_t variable = 0;
  std::size_t constant = 0;
  for (std::size_t i = 0; i < dataset.rules.size(); ++i) {
    if (dataset.rules.rule(static_cast<RuleId>(i)).IsVariable()) {
      ++variable;
    } else {
      ++constant;
    }
  }
  EXPECT_EQ(variable, 1u);
  EXPECT_GE(constant, 80u);  // >= 40 zips x 2 normal-form rules
}

TEST(Dataset1Test, GroupSizesVaryWidely) {
  // The defining Dataset 1 property for Figure 3: hospital volumes are
  // Zipf-skewed, so per-hospital record counts span orders of magnitude.
  Dataset dataset = *GenerateDataset1({.num_records = 5000, .seed = 9});
  const AttrId hospital = dataset.clean.schema().FindAttr("HospitalName");
  std::size_t max_count = 0;
  std::size_t min_count = 5000;
  for (std::size_t v = 0; v < dataset.clean.DomainSize(hospital); ++v) {
    const auto count = static_cast<std::size_t>(
        dataset.clean.ValueCount(hospital, static_cast<ValueId>(v)));
    if (count == 0) continue;
    max_count = std::max(max_count, count);
    min_count = std::min(min_count, count);
  }
  EXPECT_GT(max_count, 10 * std::max<std::size_t>(min_count, 1));
}

}  // namespace
}  // namespace gdr
