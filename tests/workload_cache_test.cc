// The content-keyed workload cache: canonical-key equivalence (reordered
// specs share one entry, distinct specs never alias), LRU eviction, the
// disk layer's round-trip / collision-probing / corrupt-entry degradation,
// and the experiment-level guarantee that a cached resolution is
// indistinguishable from a fresh one.
#include "workload/workload_cache.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "util/strings.h"
#include "workload/registry.h"

namespace gdr {
namespace {

std::filesystem::path TempDir(const std::string& leaf) {
  const auto dir = std::filesystem::temp_directory_path() / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

constexpr char kSpec[] = "dataset1:records=150,seed=4";
constexpr char kSpecReordered[] = " dataset1 : seed=4 , records=150 ";

TEST(WorkloadCanonicalTest, NormalizesOrderAndWhitespace) {
  const auto a = WorkloadSpec::Parse(kSpec);
  const auto b = WorkloadSpec::Parse(kSpecReordered);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Canonical(), "dataset1:records=150,seed=4");
  EXPECT_EQ(a->Canonical(), b->Canonical());
  EXPECT_EQ(a->ContentHash(), b->ContentHash());
}

TEST(WorkloadCanonicalTest, DistinctSpecsDiffer) {
  const auto a = WorkloadSpec::Parse("dataset1:records=150,seed=4");
  const auto b = WorkloadSpec::Parse("dataset1:records=150,seed=5");
  const auto c = WorkloadSpec::Parse("dataset2:records=150,seed=4");
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_NE(a->Canonical(), b->Canonical());
  EXPECT_NE(a->Canonical(), c->Canonical());
  EXPECT_NE(a->ContentHash(), b->ContentHash());
  EXPECT_NE(a->ContentHash(), c->ContentHash());
}

TEST(WorkloadCacheTest, ReorderedSpecHitsTheSameEntry) {
  WorkloadCache cache;
  auto first = cache.Resolve(kSpec);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.counters().misses, 1u);

  auto second = cache.Resolve(kSpecReordered);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.counters().memory_hits, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);
  // Same shared instance, not merely equal content.
  EXPECT_EQ(first->get(), second->get());
}

TEST(WorkloadCacheTest, DistinctSpecsNeverAlias) {
  WorkloadCache cache;
  auto a = cache.Resolve("dataset1:records=150,seed=4");
  auto b = cache.Resolve("dataset1:records=150,seed=5");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cache.counters().misses, 2u);
  EXPECT_EQ(cache.counters().hits(), 0u);
  EXPECT_NE(a->get(), b->get());
  EXPECT_NE(*(*a)->dirty.CountDifferingCells((*b)->dirty), 0u);
}

TEST(WorkloadCacheTest, LruEvictsBeyondMaxResident) {
  WorkloadCacheOptions options;
  options.max_resident = 2;
  WorkloadCache cache(options);
  ASSERT_TRUE(cache.Resolve("dataset1:records=60,seed=1").ok());
  ASSERT_TRUE(cache.Resolve("dataset1:records=60,seed=2").ok());
  // Touch seed=1 so seed=2 is the LRU victim when seed=3 arrives.
  ASSERT_TRUE(cache.Resolve("dataset1:records=60,seed=1").ok());
  ASSERT_TRUE(cache.Resolve("dataset1:records=60,seed=3").ok());

  ASSERT_TRUE(cache.Resolve("dataset1:records=60,seed=1").ok());
  EXPECT_EQ(cache.counters().memory_hits, 2u);
  ASSERT_TRUE(cache.Resolve("dataset1:records=60,seed=2").ok());
  EXPECT_EQ(cache.counters().misses, 4u);  // evicted, no disk layer: re-run
}

TEST(WorkloadCacheTest, DiskLayerSurvivesProcessBoundary) {
  const auto dir = TempDir("gdr_cache_disk");
  WorkloadCacheOptions options;
  options.cache_dir = dir.string();

  std::string fresh_fingerprint;
  {
    WorkloadCache cache(options);
    auto dataset = cache.Resolve(kSpec);
    ASSERT_TRUE(dataset.ok());
    EXPECT_EQ(cache.counters().misses, 1u);
    ExperimentConfig config;
    config.seed = 11;
    auto result = RunStrategyExperiment(**dataset, config);
    ASSERT_TRUE(result.ok());
    fresh_fingerprint = result->strategy_name +
                        std::to_string(result->stats.user_feedback) +
                        std::to_string(result->final_loss);
  }

  // A new cache object = a new process as far as the memory layer is
  // concerned; only the disk entry can answer.
  WorkloadCache cache(options);
  auto dataset = cache.Resolve(kSpecReordered);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(cache.counters().disk_hits, 1u);
  EXPECT_EQ(cache.counters().misses, 0u);
  EXPECT_EQ((*dataset)->name, "dataset1-hospital");

  // The cached resolution is experiment-indistinguishable from the fresh
  // one (PR 4's export/load bit-identity, now load-bearing for the cache).
  ExperimentConfig config;
  config.seed = 11;
  auto result = RunStrategyExperiment(**dataset, config);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->strategy_name +
                std::to_string(result->stats.user_feedback) +
                std::to_string(result->final_loss),
            fresh_fingerprint);
  std::filesystem::remove_all(dir);
}

TEST(WorkloadCacheTest, HashCollisionProbesSaltedSlot) {
  const auto dir = TempDir("gdr_cache_collision");
  WorkloadCacheOptions options;
  options.cache_dir = dir.string();

  // Occupy the spec's primary slot with a *different* canonical string —
  // a hand-made 64-bit FNV collision. The cache must refuse the slot and
  // store/find the real entry under the salted name.
  const auto spec = WorkloadSpec::Parse(kSpec);
  ASSERT_TRUE(spec.ok());
  const std::string slot = dir.string() + "/wl_" + Fnv1a64Hex(spec->Canonical());
  std::filesystem::create_directories(slot);
  {
    std::ofstream meta(slot + "/meta.txt");
    meta << "gdr-workload-cache 1\n";
    meta << "spec " << EncodeHex("some-other-spec:with=same-hash") << "\n";
    meta << "name " << EncodeHex("impostor") << "\n";
    meta << "corrupted 0\n";
  }

  WorkloadCache store(options);
  ASSERT_TRUE(store.Resolve(kSpec).ok());
  EXPECT_EQ(store.counters().misses, 1u);
  EXPECT_GE(store.counters().collisions_resolved, 1u);
  EXPECT_TRUE(std::filesystem::exists(slot + "_1/meta.txt"));

  WorkloadCache load(options);
  auto dataset = load.Resolve(kSpec);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(load.counters().disk_hits, 1u);
  EXPECT_GE(load.counters().collisions_resolved, 1u);
  EXPECT_EQ((*dataset)->name, "dataset1-hospital");  // not "impostor"
  std::filesystem::remove_all(dir);
}

TEST(WorkloadCacheTest, CorruptDiskEntryDegradesToFullResolve) {
  const auto dir = TempDir("gdr_cache_corrupt");
  WorkloadCacheOptions options;
  options.cache_dir = dir.string();
  {
    WorkloadCache cache(options);
    ASSERT_TRUE(cache.Resolve(kSpec).ok());
  }
  // Truncate the exported clean table; meta.txt still marks the entry
  // complete, so the load is attempted and must fail cleanly.
  bool truncated = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    for (const auto& file : std::filesystem::directory_iterator(entry)) {
      if (file.path().extension() == ".csv") {
        std::ofstream clobber(file.path(), std::ios::trunc);
        clobber << "City\n";  // wrong schema, wrong rows
        truncated = true;
      }
    }
  }
  ASSERT_TRUE(truncated);

  WorkloadCache cache(options);
  auto dataset = cache.Resolve(kSpec);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(cache.counters().disk_hits, 0u);
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_EQ((*dataset)->dirty.num_rows(), 150u);
  std::filesystem::remove_all(dir);
}

TEST(WorkloadCacheTest, ParseErrorsPropagate) {
  WorkloadCache cache;
  EXPECT_FALSE(cache.Resolve(":records=1").ok());
  EXPECT_FALSE(cache.Resolve("no-such-workload:x=1").ok());
}

}  // namespace
}  // namespace gdr
