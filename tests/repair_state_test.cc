#include "repair/repair_state.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

TEST(RepairStateTest, CellsStartChangeable) {
  RepairState state;
  EXPECT_TRUE(state.IsChangeable(CellKey{0, 0}));
  EXPECT_TRUE(state.IsChangeable(CellKey{123, 7}));
  EXPECT_EQ(state.frozen_count(), 0u);
}

TEST(RepairStateTest, FreezeIsSticky) {
  RepairState state;
  state.Freeze(CellKey{3, 1});
  EXPECT_FALSE(state.IsChangeable(CellKey{3, 1}));
  EXPECT_TRUE(state.IsChangeable(CellKey{3, 2}));
  EXPECT_TRUE(state.IsChangeable(CellKey{4, 1}));
  state.Freeze(CellKey{3, 1});  // idempotent
  EXPECT_EQ(state.frozen_count(), 1u);
}

TEST(RepairStateTest, PreventedListIsPerCell) {
  RepairState state;
  state.Prevent(CellKey{1, 0}, 5);
  EXPECT_TRUE(state.IsPrevented(CellKey{1, 0}, 5));
  EXPECT_FALSE(state.IsPrevented(CellKey{1, 0}, 6));
  EXPECT_FALSE(state.IsPrevented(CellKey{2, 0}, 5));
  EXPECT_EQ(state.PreventedCount(CellKey{1, 0}), 1u);
  EXPECT_EQ(state.PreventedCount(CellKey{2, 0}), 0u);
}

TEST(RepairStateTest, PreventedListGrows) {
  RepairState state;
  for (ValueId v = 0; v < 10; ++v) state.Prevent(CellKey{0, 0}, v);
  state.Prevent(CellKey{0, 0}, 3);  // duplicate
  EXPECT_EQ(state.PreventedCount(CellKey{0, 0}), 10u);
}

TEST(CellKeyTest, EqualityAndHash) {
  const CellKey a{1, 2};
  const CellKey b{1, 2};
  const CellKey c{2, 1};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  CellKeyHash hash;
  EXPECT_EQ(hash(a), hash(b));
  EXPECT_NE(hash(a), hash(c));  // not guaranteed in general, true here
}

TEST(UpdateTest, EqualityIgnoresScore) {
  const Update a{1, 2, 3, 0.5};
  const Update b{1, 2, 3, 0.9};
  const Update c{1, 2, 4, 0.5};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a.cell() == b.cell());
}

TEST(UpdateTest, ToStringShowsTransition) {
  Schema schema = *Schema::Make({"CT"});
  Table table(schema);
  ASSERT_TRUE(table.AppendRow({"Fort Wayn"}).ok());
  const ValueId v = table.InternValue(0, "Fort Wayne");
  const Update update{0, 0, v, 0.9};
  const std::string text = update.ToString(table);
  EXPECT_NE(text.find("Fort Wayn"), std::string::npos);
  EXPECT_NE(text.find("Fort Wayne"), std::string::npos);
  EXPECT_NE(text.find("CT"), std::string::npos);
}

TEST(FeedbackTest, Names) {
  EXPECT_STREQ(FeedbackName(Feedback::kConfirm), "confirm");
  EXPECT_STREQ(FeedbackName(Feedback::kReject), "reject");
  EXPECT_STREQ(FeedbackName(Feedback::kRetain), "retain");
}

}  // namespace
}  // namespace gdr
