// Crash-safety of snapshot persistence and restore:
//  - a truncated wire-v3 prefix (crash mid-write) can never deserialize as
//    a complete snapshot — the "end" marker regression;
//  - legacy v1/v2 texts still load, and truncated legacy prefixes never
//    crash and never strand a session;
//  - a failed Restore() rolls the session back to pristine: the table is
//    untouched and the session runs fresh to the same finals as a control;
//  - WriteFileAtomic round-trips bytes and replaces files whole.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/session.h"
#include "util/fileio.h"

namespace gdr {
namespace {

Schema TestSchema() { return *Schema::Make({"City", "Zip", "State"}); }

RuleSet TestRules() {
  RuleSet rules(TestSchema());
  EXPECT_TRUE(rules.AddRuleFromString("v1", "City -> Zip").ok());
  EXPECT_TRUE(rules.AddRuleFromString("v2", "Zip -> City").ok());
  EXPECT_TRUE(
      rules.AddRuleFromString("c1", "City=Springfield -> State=IL").ok());
  return rules;
}

using Truth = std::vector<std::vector<std::string>>;

Truth BaseTruth() {
  return {{"Springfield", "Z0", "IL"},
          {"Springfield", "Z0", "IL"},
          {"Shelby", "Z1", "IN"},
          {"Shelby", "Z1", "IN"},
          {"Dalton", "Z2", "OH"},
          {"Dalton", "Z2", "OH"}};
}

Table BaseDirty() {
  Table table(TestSchema());
  Truth rows = BaseTruth();
  rows[1][1] = "Zx";  // breaks City -> Zip (and Zip -> City)
  rows[0][2] = "XX";  // breaks the constant rule c1
  for (const auto& row : rows) EXPECT_TRUE(table.AppendRow(row).ok());
  return table;
}

GdrOptions TestOptions() {
  GdrOptions options;
  options.strategy = Strategy::kGdrNoLearning;
  options.ns = 2;
  options.seed = 42;
  options.feedback_budget = 100;
  return options;
}

struct PolicyAnswer {
  Feedback feedback;
  std::optional<std::string> volunteered;
};

PolicyAnswer Answer(const Table& table, const Truth& truth,
                    const SuggestedUpdate& s) {
  const std::string& expected =
      truth[static_cast<std::size_t>(s.update.row)]
           [static_cast<std::size_t>(s.update.attr)];
  const std::string& suggested =
      table.dict(s.update.attr).ToString(s.update.value);
  if (suggested == expected) return {Feedback::kConfirm, std::nullopt};
  if (table.at(s.update.row, s.update.attr) == expected) {
    return {Feedback::kRetain, std::nullopt};
  }
  return {Feedback::kReject, expected};
}

void Drive(GdrSession* session, const Truth& truth,
           std::vector<std::string>* trace) {
  while (session->state() != SessionState::kDone) {
    const auto batch = session->NextBatch();
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch->empty() && session->state() == SessionState::kDone) break;
    for (const SuggestedUpdate& s : *batch) {
      if (!session->IsLive(s.update_id)) continue;
      trace->push_back(std::to_string(s.update_id) + "|r" +
                       std::to_string(s.update.row) + "|a" +
                       std::to_string(s.update.attr));
      const PolicyAnswer answer = Answer(session->table(), truth, s);
      const auto outcome = session->SubmitFeedback(s.update_id,
                                                   answer.feedback,
                                                   answer.volunteered);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    }
  }
}

std::vector<std::string> TableCells(const Table& table) {
  std::vector<std::string> cells;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t a = 0; a < table.num_attrs(); ++a) {
      cells.push_back(table.at(static_cast<RowId>(r), static_cast<AttrId>(a)));
    }
  }
  return cells;
}

// Drives a session part way — one full batch answered, then a reject with
// a volunteered value carrying bytes that need hex framing — and returns
// its snapshot. The last event is a submit with a V<hex> payload, which is
// exactly the shape whose truncation used to parse silently.
SessionSnapshot PartialSnapshot(Table* table, const RuleSet* rules) {
  GdrSession session(table, rules, TestOptions());
  EXPECT_TRUE(session.Start().ok());
  auto batch = session.NextBatch();
  EXPECT_TRUE(batch.ok());
  const Truth truth = BaseTruth();
  for (const SuggestedUpdate& s : *batch) {
    if (!session.IsLive(s.update_id)) continue;
    const PolicyAnswer answer = Answer(session.table(), truth, s);
    EXPECT_TRUE(session
                    .SubmitFeedback(s.update_id, answer.feedback,
                                    answer.volunteered)
                    .ok());
  }
  batch = session.NextBatch();
  EXPECT_TRUE(batch.ok());
  EXPECT_FALSE(batch->empty());
  EXPECT_TRUE(session
                  .SubmitFeedback((*batch)[0].update_id, Feedback::kReject,
                                  std::string("Spring field\nvalue"))
                  .ok());
  return session.Snapshot();
}

bool SnapshotsEqual(const SessionSnapshot& a, const SessionSnapshot& b) {
  return a.strategy == b.strategy && a.seed == b.seed &&
         a.feedback_budget == b.feedback_budget && a.ns == b.ns &&
         a.max_outer_iterations == b.max_outer_iterations &&
         a.learner_sweep_passes == b.learner_sweep_passes &&
         a.learner_max_uncertainty == b.learner_max_uncertainty &&
         a.learner_min_accuracy == b.learner_min_accuracy &&
         a.events == b.events;
}

// Rewrites a v3 text as the legacy version: header downgraded, no "end"
// marker — byte-identical to what an old build serialized.
std::string AsLegacy(std::string text, int version) {
  const std::string v3_header = "GDRSNAP 3";
  EXPECT_EQ(text.rfind(v3_header, 0), 0u);
  text.replace(0, v3_header.size(), "GDRSNAP " + std::to_string(version));
  const std::string marker = "end\n";
  EXPECT_TRUE(text.size() >= marker.size() &&
              text.compare(text.size() - marker.size(), marker.size(),
                           marker) == 0);
  text.erase(text.size() - marker.size());
  return text;
}

TEST(SnapshotTruncationTest, V3PrefixNeverParsesAsComplete) {
  Table table = BaseDirty();
  const RuleSet rules = TestRules();
  const SessionSnapshot full = PartialSnapshot(&table, &rules);
  const std::string text = full.Serialize();
  ASSERT_GT(text.size(), 0u);

  for (std::size_t len = 0; len < text.size(); ++len) {
    const auto parsed = SessionSnapshot::Deserialize(text.substr(0, len));
    if (parsed.ok()) {
      // The only prefix allowed to parse is one differing from the full
      // text by trailing whitespace — and then it must parse *identically*,
      // never as a shortened or value-corrupted snapshot.
      EXPECT_TRUE(SnapshotsEqual(*parsed, full))
          << "prefix of length " << len << " parsed as a different snapshot";
    }
  }
  // A cut through the final submit's hex payload is the historic silent
  // corruption; pin that it now fails outright.
  const std::size_t last_v = text.rfind(" V");
  ASSERT_NE(last_v, std::string::npos);
  EXPECT_FALSE(SessionSnapshot::Deserialize(text.substr(0, last_v + 6)).ok());
}

TEST(SnapshotTruncationTest, LegacyV1V2StillLoadAndTruncationsNeverStrand) {
  Table table = BaseDirty();
  const RuleSet rules = TestRules();
  const SessionSnapshot full = PartialSnapshot(&table, &rules);
  const std::string v3_text = full.Serialize();

  const Truth truth = BaseTruth();
  for (const int version : {1, 2}) {
    const std::string text = AsLegacy(v3_text, version);

    // The complete legacy text must load and restore to the same state.
    const auto parsed = SessionSnapshot::Deserialize(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(SnapshotsEqual(*parsed, full));

    for (std::size_t len = 0; len < text.size(); ++len) {
      const auto prefix = SessionSnapshot::Deserialize(text.substr(0, len));
      if (!prefix.ok()) continue;  // clean rejection — the common case
      // Legacy texts have no terminator, so a tail-of-hex cut can still
      // parse. The guarantee that remains: restoring it either fails
      // cleanly or yields a *usable* session that runs to completion —
      // never a crash, never a stranded half-restored loop.
      Table replay_table = BaseDirty();
      GdrSession session(&replay_table, &rules, TestOptions());
      const Status restored = session.Restore(*prefix);
      if (!restored.ok()) {
        EXPECT_EQ(TableCells(replay_table), TableCells(BaseDirty()))
            << "failed restore of a length-" << len
            << " legacy prefix left the table mutated";
        continue;
      }
      std::vector<std::string> trace;
      Drive(&session, truth, &trace);
      EXPECT_EQ(session.state(), SessionState::kDone);
    }
  }
}

TEST(RestoreRollbackTest, FailedRestoreLeavesSessionPristineAndRunnable) {
  const RuleSet rules = TestRules();
  Table snapshot_table = BaseDirty();
  SessionSnapshot corrupted = PartialSnapshot(&snapshot_table, &rules);
  // Flip one applied submit to "not applied": replay diverges and must
  // abort partway through — after repairs have already touched the table.
  bool flipped = false;
  for (auto& event : corrupted.events) {
    if (event.kind == SessionSnapshot::Event::Kind::kSubmit &&
        event.applied) {
      event.applied = false;
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped);

  // Control: the same fixture driven fresh, no restore attempt.
  Table control_table = BaseDirty();
  GdrSession control(&control_table, &rules, TestOptions());
  ASSERT_TRUE(control.Start().ok());
  std::vector<std::string> control_trace;
  Drive(&control, BaseTruth(), &control_trace);

  Table table = BaseDirty();
  GdrSession session(&table, &rules, TestOptions());
  const Status restored = session.Restore(corrupted);
  ASSERT_FALSE(restored.ok());

  // Rollback: the table holds its pre-call contents again.
  EXPECT_EQ(TableCells(table), TableCells(BaseDirty()));

  // And the session is restartable: fresh run, identical to the control.
  ASSERT_TRUE(session.Start().ok());
  std::vector<std::string> trace;
  Drive(&session, BaseTruth(), &trace);
  EXPECT_EQ(trace, control_trace);
  EXPECT_EQ(TableCells(table), TableCells(control_table));
}

TEST(RestoreRollbackTest, FailedRestoreThenValidRestoreSucceeds) {
  const RuleSet rules = TestRules();
  Table snapshot_table = BaseDirty();
  const SessionSnapshot valid = PartialSnapshot(&snapshot_table, &rules);
  SessionSnapshot corrupted = valid;
  ASSERT_FALSE(corrupted.events.empty());
  corrupted.events.push_back(SessionSnapshot::Event{
      .kind = SessionSnapshot::Event::Kind::kSubmit,
      .update_id = 9999,  // never issued: replay rejects it
      .feedback = Feedback::kConfirm,
      .applied = true});

  Table table = BaseDirty();
  GdrSession session(&table, &rules, TestOptions());
  ASSERT_FALSE(session.Restore(corrupted).ok());

  // The rollback must leave the session eligible for another Restore —
  // the server's rehydration retry path depends on this.
  const Status second = session.Restore(valid);
  ASSERT_TRUE(second.ok()) << second.ToString();
  EXPECT_EQ(TableCells(table), TableCells(snapshot_table));
  std::vector<std::string> trace;
  Drive(&session, BaseTruth(), &trace);
  EXPECT_EQ(session.state(), SessionState::kDone);
}

TEST(FileIoTest, WriteFileAtomicRoundTripsAndReplaces) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gdr_fileio_test" /
       "nested" / "file.bin").string();
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "gdr_fileio_test");

  std::string bytes = "first";
  bytes.push_back('\0');
  bytes += "\nsecond\r\n";
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());  // creates parent dirs
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, bytes);

  ASSERT_TRUE(WriteFileAtomic(path, "replaced").ok());
  read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "replaced");

  // No temp residue after a successful write.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  EXPECT_TRUE(RemoveFileIfExists(path).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(RemoveFileIfExists(path).ok());  // missing is not an error
  EXPECT_FALSE(ReadFileToString(path).ok());
  std::filesystem::remove_all(
      std::filesystem::temp_directory_path() / "gdr_fileio_test");
}

TEST(FileIoTest, SnapshotFileSurvivesTruncatedPredecessor) {
  // The end-to-end shape of the crash-safety story: a good snapshot on
  // disk, then a simulated crash mid-rewrite (a stray half-written temp
  // file) — the original must still load.
  const auto dir = std::filesystem::temp_directory_path() / "gdr_crash_test";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "session.snapshot").string();

  Table table = BaseDirty();
  const RuleSet rules = TestRules();
  const std::string good = PartialSnapshot(&table, &rules).Serialize();
  ASSERT_TRUE(WriteFileAtomic(path, good).ok());

  {  // crash mid-write: the temp file holds a prefix, never renamed
    std::FILE* f = std::fopen((path + ".tmp").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(good.data(), 1, good.size() / 2, f);
    std::fclose(f);
  }

  const auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, good);
  const auto parsed = SessionSnapshot::Deserialize(*contents);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();

  // And the next atomic write simply replaces the stray temp file.
  ASSERT_TRUE(WriteFileAtomic(path, good).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace gdr
