#include "ml/random_forest.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

FeatureSchema MixedSchema() {
  return FeatureSchema({{"color", FeatureType::kCategorical},
                        {"size", FeatureType::kNumeric}});
}

TrainingSet SeparableSet(int n, std::uint64_t seed) {
  TrainingSet set(MixedSchema(), 2);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double color = static_cast<double>(rng.NextBounded(5));
    const double size = rng.NextDouble() * 10.0;
    EXPECT_TRUE(set.Add({{color, size}, size > 5.0 ? 1 : 0}).ok());
  }
  return set;
}

TEST(RandomForestTest, RejectsEmptyTraining) {
  TrainingSet set(MixedSchema(), 2);
  RandomForest forest;
  EXPECT_FALSE(forest.Train(set).ok());
}

TEST(RandomForestTest, TrainsTenTreesByDefault) {
  TrainingSet set = SeparableSet(100, 1);
  RandomForest forest;
  ASSERT_TRUE(forest.Train(set).ok());
  EXPECT_EQ(forest.num_trees(), 10);
  EXPECT_TRUE(forest.trained());
}

TEST(RandomForestTest, LearnsSeparableConcept) {
  TrainingSet set = SeparableSet(400, 2);
  RandomForest forest;
  ASSERT_TRUE(forest.Train(set).ok());
  int correct = 0;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double color = static_cast<double>(rng.NextBounded(5));
    const double size = rng.NextDouble() * 10.0;
    const int truth = size > 5.0 ? 1 : 0;
    correct += forest.Predict({color, size}) == truth ? 1 : 0;
  }
  EXPECT_GE(correct, 180);  // >= 90%
}

TEST(RandomForestTest, VoteFractionsSumToOne) {
  TrainingSet set = SeparableSet(100, 4);
  RandomForest forest;
  ASSERT_TRUE(forest.Train(set).ok());
  const std::vector<double> fractions = forest.VoteFractions({1.0, 7.0});
  ASSERT_EQ(fractions.size(), 2u);
  EXPECT_NEAR(fractions[0] + fractions[1], 1.0, 1e-12);
}

TEST(RandomForestTest, CommitteeVotesMatchFractions) {
  TrainingSet set = SeparableSet(100, 5);
  RandomForest forest;
  ASSERT_TRUE(forest.Train(set).ok());
  const std::vector<double> x = {2.0, 4.9};
  const std::vector<int> votes = forest.CommitteeVotes(x);
  ASSERT_EQ(votes.size(), 10u);
  std::vector<double> fractions(2, 0.0);
  for (int v : votes) fractions[static_cast<std::size_t>(v)] += 0.1;
  const std::vector<double> reported = forest.VoteFractions(x);
  EXPECT_NEAR(fractions[0], reported[0], 1e-9);
}

TEST(RandomForestTest, PaperSection42UncertaintyExamples) {
  // Committee of 5: votes {confirm x3, reject x1, retain x1} -> 0.86,
  // votes {confirm x1, reject x4} -> 0.45 (entropy with log base 3).
  EXPECT_NEAR(
      RandomForest::VoteEntropy({3.0 / 5.0, 1.0 / 5.0, 1.0 / 5.0}), 0.86,
      0.005);
  EXPECT_NEAR(RandomForest::VoteEntropy({1.0 / 5.0, 4.0 / 5.0, 0.0}), 0.455,
              0.005);
}

TEST(RandomForestTest, VoteEntropyRange) {
  EXPECT_DOUBLE_EQ(RandomForest::VoteEntropy({1.0, 0.0, 0.0}), 0.0);
  EXPECT_NEAR(
      RandomForest::VoteEntropy({1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0}), 1.0,
      1e-12);
  EXPECT_DOUBLE_EQ(RandomForest::VoteEntropy({}), 0.0);
  EXPECT_DOUBLE_EQ(RandomForest::VoteEntropy({1.0}), 0.0);
}

TEST(RandomForestTest, UncertaintyLowOnConfidentRegion) {
  TrainingSet set = SeparableSet(400, 6);
  RandomForest forest;
  ASSERT_TRUE(forest.Train(set).ok());
  // Deep inside class 1 territory the committee should agree.
  EXPECT_LT(forest.Uncertainty({1.0, 9.5}), 0.5);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  TrainingSet set = SeparableSet(200, 7);
  RandomForestOptions options;
  options.seed = 99;
  RandomForest a(options);
  RandomForest b(options);
  ASSERT_TRUE(a.Train(set).ok());
  ASSERT_TRUE(b.Train(set).ok());
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> x = {static_cast<double>(i % 5),
                                   static_cast<double>(i % 10)};
    EXPECT_EQ(a.Predict(x), b.Predict(x));
    EXPECT_DOUBLE_EQ(a.Uncertainty(x), b.Uncertainty(x));
  }
}

TEST(RandomForestTest, DifferentSeedsGrowDifferentForests) {
  TrainingSet set = SeparableSet(200, 8);
  RandomForestOptions oa;
  oa.seed = 1;
  RandomForestOptions ob;
  ob.seed = 2;
  RandomForest a(oa);
  RandomForest b(ob);
  ASSERT_TRUE(a.Train(set).ok());
  ASSERT_TRUE(b.Train(set).ok());
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> x = {static_cast<double>(i % 5),
                                   4.0 + (i % 20) * 0.1};
    if (a.Uncertainty(x) != b.Uncertainty(x)) ++differing;
  }
  EXPECT_GT(differing, 0);
}

class ForestSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(ForestSizeTest, AccuracyHoldsAcrossCommitteeSizes) {
  TrainingSet set = SeparableSet(300, 11);
  RandomForestOptions options;
  options.num_trees = GetParam();
  RandomForest forest(options);
  ASSERT_TRUE(forest.Train(set).ok());
  EXPECT_EQ(forest.num_trees(), GetParam());
  int correct = 0;
  Rng rng(12);
  for (int i = 0; i < 100; ++i) {
    const double size = rng.NextDouble() * 10.0;
    correct += forest.Predict({0.0, size}) == (size > 5.0 ? 1 : 0) ? 1 : 0;
  }
  EXPECT_GE(correct, 85);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestSizeTest,
                         ::testing::Values(1, 5, 10, 20));

}  // namespace
}  // namespace gdr
