// GdrSession API behavior: state machine transitions, batch metadata,
// feedback outcomes, abandoned batches, budget accounting, and the
// snapshot wire format. Bit-identity with the legacy Run() loop is covered
// separately by session_differential_test.cc.
#include "core/session.h"

#include <gtest/gtest.h>

#include "sim/oracle.h"
#include "workload/registry.h"

namespace gdr {
namespace {

Dataset SmallDataset() {
  return *WorkloadRegistry::Global().Resolve("dataset1:records=600,seed=21");
}

// Answers every live suggestion of one delivered batch with the oracle.
void AnswerBatch(GdrSession* session, const std::vector<SuggestedUpdate>& batch,
                 UserOracle* oracle) {
  for (const SuggestedUpdate& s : batch) {
    if (!session->IsLive(s.update_id)) continue;
    const Feedback f = oracle->GetFeedback(session->table(), s.update);
    ASSERT_TRUE(session->SubmitFeedback(s.update_id, f).ok());
  }
}

TEST(GdrSessionTest, StartRequiredBeforeUse) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  GdrSession session(&working, &dataset.rules);
  EXPECT_EQ(session.NextBatch().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.SubmitFeedback(1, Feedback::kConfirm).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(GdrSessionTest, StartIsSingleShot) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  GdrSession session(&working, &dataset.rules);
  ASSERT_TRUE(session.Start().ok());
  EXPECT_EQ(session.Start().code(), StatusCode::kFailedPrecondition);
}

TEST(GdrSessionTest, RunShimRequiresProvider) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  GdrEngine engine(&working, &dataset.rules, /*user=*/nullptr);
  ASSERT_TRUE(engine.Initialize().ok());
  EXPECT_EQ(engine.Run().code(), StatusCode::kFailedPrecondition);
  // ...but the same engine is perfectly drivable through a session.
  GdrSession session(&engine);
  ASSERT_TRUE(session.Start().ok());
  auto batch = session.NextBatch();
  ASSERT_TRUE(batch.ok());
  EXPECT_FALSE(batch->empty());
}

TEST(GdrSessionTest, BatchShapeAndMetadata) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  GdrOptions options;
  options.feedback_budget = 40;
  options.ns = 5;
  GdrSession session(&working, &dataset.rules, options);
  ASSERT_TRUE(session.Start().ok());
  EXPECT_EQ(session.state(), SessionState::kRanking);

  auto batch = session.NextBatch();
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch->empty());
  EXPECT_LE(batch->size(), 5u);
  EXPECT_EQ(session.state(), SessionState::kAwaitingFeedback);
  EXPECT_EQ(session.Outstanding().size(), batch->size());

  for (const SuggestedUpdate& s : *batch) {
    // Grouped strategies present one (attribute := value) group per batch.
    EXPECT_EQ(s.group_attr, batch->front().group_attr);
    EXPECT_EQ(s.group_value, batch->front().group_value);
    EXPECT_EQ(s.group_attr, s.update.attr);
    EXPECT_EQ(s.group_value, s.update.value);
    EXPECT_GT(s.voi_score, 0.0);  // kGdr ranks by VOI; top group scores > 0
    EXPECT_GE(s.uncertainty, 0.0);
    EXPECT_LE(s.uncertainty, 1.0);
    EXPECT_EQ(s.budget_remaining, 40u);
    EXPECT_TRUE(session.IsLive(s.update_id));
  }
  // Ids are unique and assigned in delivery order.
  for (std::size_t i = 1; i < batch->size(); ++i) {
    EXPECT_GT((*batch)[i].update_id, (*batch)[i - 1].update_id);
  }
}

TEST(GdrSessionTest, FeedbackOutcomesForBadIds) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  GdrSession session(&working, &dataset.rules);
  ASSERT_TRUE(session.Start().ok());
  auto batch = session.NextBatch();
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch->empty());

  auto unknown = session.SubmitFeedback(999999, Feedback::kConfirm);
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(*unknown, FeedbackOutcome::kUnknownId);

  const std::uint64_t id = batch->front().update_id;
  auto first = session.SubmitFeedback(id, Feedback::kRetain);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, FeedbackOutcome::kApplied);
  auto second = session.SubmitFeedback(id, Feedback::kRetain);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, FeedbackOutcome::kDuplicate);
  EXPECT_EQ(session.stats().user_feedback, 1u);  // duplicate consumed nothing
  EXPECT_FALSE(session.IsLive(id));              // resolved ids are dead
}

TEST(GdrSessionTest, ResolvingWholeBatchLeavesRankingState) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean);
  GdrSession session(&working, &dataset.rules);
  ASSERT_TRUE(session.Start().ok());
  auto batch = session.NextBatch();
  ASSERT_TRUE(batch.ok());
  for (const SuggestedUpdate& s : *batch) {
    if (!session.IsLive(s.update_id)) continue;
    auto outcome = session.SubmitFeedback(
        s.update_id, oracle.GetFeedback(session.table(), s.update));
    ASSERT_TRUE(outcome.ok());
    // Within-batch staleness (cascades) must never surface as an error.
    EXPECT_TRUE(*outcome == FeedbackOutcome::kApplied ||
                *outcome == FeedbackOutcome::kStale);
  }
  EXPECT_EQ(session.state(), SessionState::kRanking);
  EXPECT_TRUE(session.Outstanding().empty());
}

TEST(GdrSessionTest, AbandonedBatchIsRepresented) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  GdrOptions options;
  options.strategy = Strategy::kGdrNoLearning;  // deterministic ordering
  GdrSession session(&working, &dataset.rules, options);
  ASSERT_TRUE(session.Start().ok());
  auto first = session.NextBatch();
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->empty());
  // Pull again without answering: the unresolved suggestions are abandoned
  // but stay pooled, so the machine re-presents the same updates (with
  // fresh ids) rather than dropping them.
  auto second = session.NextBatch();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), first->size());
  for (std::size_t i = 0; i < first->size(); ++i) {
    EXPECT_TRUE((*second)[i].update == (*first)[i].update);
    EXPECT_NE((*second)[i].update_id, (*first)[i].update_id);
  }
  // Ids of the abandoned batch are dead.
  EXPECT_FALSE(session.IsLive(first->front().update_id));
  EXPECT_EQ(session.SubmitFeedback(first->front().update_id,
                                   Feedback::kConfirm)
                .ValueOrDie(),
            FeedbackOutcome::kUnknownId);
}

TEST(GdrSessionTest, AbandonedActiveLearningBatchIsRepresented) {
  // Regression: Active-Learning conflated "caller pulled again without
  // answering" with the all-stale termination signal and jumped straight
  // to the final sweep, silently dropping the skipped suggestions.
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean);
  GdrOptions options;
  options.strategy = Strategy::kActiveLearning;
  options.feedback_budget = 30;
  GdrSession session(&working, &dataset.rules, options);
  ASSERT_TRUE(session.Start().ok());
  auto first = session.NextBatch();
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->empty());
  auto second = session.NextBatch();  // abandon everything
  ASSERT_TRUE(second.ok());
  EXPECT_NE(session.state(), SessionState::kDone);
  ASSERT_FALSE(second->empty());
  // The session still completes normally once answers arrive.
  while (session.state() != SessionState::kDone) {
    auto batch = session.NextBatch();
    ASSERT_TRUE(batch.ok());
    AnswerBatch(&session, *batch, &oracle);
  }
  EXPECT_GT(session.stats().user_feedback, 0u);
}

TEST(GdrSessionTest, BudgetBoundsDeliveredBatches) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean);
  GdrOptions options;
  options.feedback_budget = 7;
  options.ns = 5;
  GdrSession session(&working, &dataset.rules, options);
  ASSERT_TRUE(session.Start().ok());
  while (session.state() != SessionState::kDone) {
    auto batch = session.NextBatch();
    ASSERT_TRUE(batch.ok());
    EXPECT_LE(batch->size(), 5u);
    // A batch never asks for more labels than the budget has left.
    for (const SuggestedUpdate& s : *batch) {
      EXPECT_LE(batch->size(), s.budget_remaining);
    }
    AnswerBatch(&session, *batch, &oracle);
  }
  EXPECT_LE(session.stats().user_feedback, 7u);
}

TEST(GdrSessionTest, RunsToCompletionAndReportsDone) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean);
  GdrOptions options;
  options.feedback_budget = 60;
  GdrSession session(&working, &dataset.rules, options);
  ASSERT_TRUE(session.Start().ok());
  const std::int64_t initial_violations =
      session.engine().index().TotalViolations();
  while (session.state() != SessionState::kDone) {
    auto batch = session.NextBatch();
    ASSERT_TRUE(batch.ok());
    AnswerBatch(&session, *batch, &oracle);
  }
  EXPECT_LT(session.engine().index().TotalViolations(), initial_violations);
  const GdrStats& stats = session.stats();
  EXPECT_EQ(stats.user_feedback,
            stats.user_confirms + stats.user_rejects + stats.user_retains);
  // Done is absorbing: further pulls return empty batches.
  auto after = session.NextBatch();
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->empty());
  EXPECT_EQ(session.state(), SessionState::kDone);
}

TEST(GdrSessionTest, SessionStateNames) {
  EXPECT_STREQ(SessionStateName(SessionState::kAwaitingFeedback),
               "awaiting-feedback");
  EXPECT_STREQ(SessionStateName(SessionState::kRanking), "ranking");
  EXPECT_STREQ(SessionStateName(SessionState::kDone), "done");
}

TEST(SessionSnapshotTest, SerializeRoundTripsArbitraryValues) {
  SessionSnapshot snapshot;
  snapshot.strategy = Strategy::kGdrSLearning;
  snapshot.seed = 0xDEADBEEFCAFEULL;
  snapshot.feedback_budget = 120;
  snapshot.ns = 7;
  snapshot.max_outer_iterations = 9999;
  snapshot.learner_sweep_passes = 4;
  snapshot.learner_max_uncertainty = 0.3500000000000000123;
  snapshot.learner_min_accuracy = 1.0 / 3.0;  // needs exact round-trip
  SessionSnapshot::Event pull;
  pull.kind = SessionSnapshot::Event::Kind::kPull;
  SessionSnapshot::Event submit;
  submit.kind = SessionSnapshot::Event::Kind::kSubmit;
  submit.update_id = 42;
  submit.feedback = Feedback::kReject;
  submit.applied = true;
  submit.has_value = true;
  submit.value = "Michigan City\nwith \"quotes\" and\tspaces";
  SessionSnapshot::Event empty_value = submit;
  empty_value.update_id = 43;
  empty_value.applied = false;  // a recorded stale submission
  empty_value.value.clear();
  snapshot.events = {pull, submit, pull, empty_value};

  const std::string text = snapshot.Serialize();
  auto parsed = SessionSnapshot::Deserialize(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->strategy, snapshot.strategy);
  EXPECT_EQ(parsed->seed, snapshot.seed);
  EXPECT_EQ(parsed->feedback_budget, snapshot.feedback_budget);
  EXPECT_EQ(parsed->ns, snapshot.ns);
  EXPECT_EQ(parsed->max_outer_iterations, snapshot.max_outer_iterations);
  EXPECT_EQ(parsed->learner_sweep_passes, snapshot.learner_sweep_passes);
  EXPECT_EQ(parsed->learner_max_uncertainty,
            snapshot.learner_max_uncertainty);  // bit-exact
  EXPECT_EQ(parsed->learner_min_accuracy, snapshot.learner_min_accuracy);
  EXPECT_EQ(parsed->events, snapshot.events);
}

TEST(SessionSnapshotTest, RoundTripsUnlimitedBudget) {
  SessionSnapshot snapshot;
  snapshot.feedback_budget = GdrOptions::kUnlimitedBudget;
  auto parsed = SessionSnapshot::Deserialize(snapshot.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->feedback_budget, GdrOptions::kUnlimitedBudget);
}

TEST(SessionSnapshotTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(SessionSnapshot::Deserialize("").ok());
  EXPECT_FALSE(SessionSnapshot::Deserialize("hello world").ok());
  EXPECT_FALSE(SessionSnapshot::Deserialize("GDRSNAP 99\n").ok());
  // Truncated event list.
  SessionSnapshot snapshot;
  SessionSnapshot::Event pull;
  pull.kind = SessionSnapshot::Event::Kind::kPull;
  snapshot.events = {pull, pull};
  std::string text = snapshot.Serialize();
  text.resize(text.size() - 2);
  EXPECT_FALSE(SessionSnapshot::Deserialize(text).ok());
}

TEST(GdrSessionTest, RestoreValidatesOptionsAndFreshness) {
  Dataset dataset = SmallDataset();
  Table working = dataset.dirty;
  UserOracle oracle(&dataset.clean);
  GdrOptions options;
  options.feedback_budget = 30;
  options.seed = 9;
  GdrSession session(&working, &dataset.rules, options);
  ASSERT_TRUE(session.Start().ok());
  auto batch = session.NextBatch();
  ASSERT_TRUE(batch.ok());
  AnswerBatch(&session, *batch, &oracle);
  const SessionSnapshot snapshot = session.Snapshot();

  // Mismatched seed is rejected outright.
  Table fresh = dataset.dirty;
  GdrOptions other = options;
  other.seed = 10;
  GdrSession mismatched(&fresh, &dataset.rules, other);
  EXPECT_EQ(mismatched.Restore(snapshot).code(), StatusCode::kInvalidArgument);

  // So is a mismatched learner delegation threshold (it would silently
  // diverge the replay's take-over decisions).
  Table fresh_threshold = dataset.dirty;
  GdrOptions other_threshold = options;
  other_threshold.learner_max_uncertainty += 0.1;
  GdrSession mismatched_threshold(&fresh_threshold, &dataset.rules,
                                  other_threshold);
  EXPECT_EQ(mismatched_threshold.Restore(snapshot).code(),
            StatusCode::kInvalidArgument);

  // A started session cannot be restored into.
  Table fresh2 = dataset.dirty;
  GdrSession started(&fresh2, &dataset.rules, options);
  ASSERT_TRUE(started.Start().ok());
  EXPECT_EQ(started.Restore(snapshot).code(),
            StatusCode::kFailedPrecondition);

  // A pristine session with matching options restores fine.
  Table fresh3 = dataset.dirty;
  GdrSession restored(&fresh3, &dataset.rules, options);
  ASSERT_TRUE(restored.Restore(snapshot).ok());
  EXPECT_EQ(restored.stats().user_feedback, session.stats().user_feedback);
  EXPECT_EQ(*fresh3.CountDifferingCells(working), 0u);
}

}  // namespace
}  // namespace gdr
