// The service layer: SessionManager semantics behind the BackendOps
// vtable, the line protocol over it, and the load-bearing differential —
// a session evicted to disk and rehydrated mid-run must finish with
// finals bit-identical to a never-evicted control.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "server/session_manager.h"
#include "util/strings.h"

namespace gdr::server {
using gdr::EncodeHex;
namespace {

std::string TempSpillDir(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(dir);
  return dir.string();
}

SessionManagerOptions TestOptions(const std::string& spill_name) {
  SessionManagerOptions options;
  options.spill_dir = TempSpillDir(spill_name);
  return options;
}

OpenConfig Figure1Config() {
  OpenConfig config;
  config.workload_spec = "figure1";
  config.feedback_budget = 40;  // bounds every drive
  config.seed = 7;
  return config;
}

// Ground-truth-free deterministic policy, a pure function of the update
// id: the point is identical event sequences across control and evicted
// sessions, not repair quality.
struct WirePolicy {
  Feedback feedback = Feedback::kConfirm;
  std::optional<std::string> value;
};

WirePolicy PolicyFor(std::uint64_t update_id) {
  if (update_id % 5 == 0) {
    return {Feedback::kReject, "vol-" + std::to_string(update_id)};
  }
  if (update_id % 3 == 0) return {Feedback::kRetain, std::nullopt};
  return {Feedback::kConfirm, std::nullopt};
}

// Drives the session to kDone through the backend. When `evict_between`
// is set, the session is forced to disk before every pull *and* between
// delivery and feedback — the adversarial placement: rehydration must
// resurrect the outstanding batch with live update ids.
void DriveToDone(const Backend& backend, const SessionKey& key,
                 bool evict_between) {
  for (int guard = 0;; ++guard) {
    ASSERT_LT(guard, 300) << "session did not terminate";
    if (evict_between) {
      const auto evicted = backend.ops->evict(backend.self, key);
      ASSERT_TRUE(evicted.ok()) << evicted.status().ToString();
    }
    const auto batch = backend.ops->next(backend.self, key);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch->suggestions.empty()) {
      EXPECT_EQ(batch->state, "done");
      break;
    }
    bool first = true;
    for (const WireSuggestion& s : batch->suggestions) {
      if (evict_between && first) {
        // Mid-batch eviction: feedback lands on a rehydrated session.
        const auto evicted = backend.ops->evict(backend.self, key);
        ASSERT_TRUE(evicted.ok()) << evicted.status().ToString();
        first = false;
      }
      const WirePolicy policy = PolicyFor(s.update_id);
      const auto outcome = backend.ops->feedback(
          backend.self, key, s.update_id, policy.feedback, policy.value);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    }
  }
}

TEST(ValidateIdTest, AcceptsTheGrammarRejectsTheRest) {
  EXPECT_TRUE(ValidateId("tenant-1", "id").ok());
  EXPECT_TRUE(ValidateId("a.b_c-D9", "id").ok());
  EXPECT_TRUE(ValidateId(std::string(64, 'x'), "id").ok());
  EXPECT_FALSE(ValidateId("", "id").ok());
  EXPECT_FALSE(ValidateId(std::string(65, 'x'), "id").ok());
  EXPECT_FALSE(ValidateId("a b", "id").ok());
  EXPECT_FALSE(ValidateId("a/b", "id").ok());  // no path traversal
  // Dots are legal: the id is always embedded in "<tenant>__<session>.
  // snapshot", never used as a bare path component, so ".." cannot escape.
  EXPECT_TRUE(ValidateId("..", "id").ok());
  EXPECT_FALSE(ValidateId("a\nb", "id").ok());
  const Status bad = ValidateId("a/b", "tenant id");
  EXPECT_NE(bad.message().find("tenant id"), std::string::npos);
}

TEST(SessionManagerTest, OpenNextFeedbackCloseLifecycle) {
  SessionManager manager(TestOptions("gdr_spill_lifecycle"));
  const SessionKey key{"acme", "s1"};
  const auto opened = manager.Open(key, Figure1Config());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened->state, "ranking");
  EXPECT_EQ(opened->initial_dirty, 5u);  // 4 corrupted + 1 implicated row
  EXPECT_GT(opened->pool_size, 0u);

  const auto batch = manager.Next(key);
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch->suggestions.empty());
  EXPECT_EQ(batch->state, "awaiting-feedback");
  const WireSuggestion& s = batch->suggestions[0];
  EXPECT_GT(s.update_id, 0u);
  EXPECT_FALSE(s.attr.empty());
  EXPECT_NE(s.current_value, s.suggested_value);

  const auto outcome =
      manager.Feedback(key, s.update_id, Feedback::kConfirm, std::nullopt);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->outcome, "applied");

  const auto cells = manager.Dump(key);
  ASSERT_TRUE(cells.ok());
  EXPECT_EQ(cells->size(), 36u);  // 6 rows x 6 attrs

  EXPECT_TRUE(manager.Close(key).ok());
  EXPECT_FALSE(manager.Next(key).ok());  // gone
}

TEST(SessionManagerTest, ErrorsAreTyped) {
  SessionManager manager(TestOptions("gdr_spill_errors"));
  const SessionKey key{"acme", "s1"};

  EXPECT_EQ(manager.Next(key).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(manager.Open({"bad tenant", "s"}, Figure1Config()).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(manager.Open({"t", "s/../../etc"}, Figure1Config())
                .status().code(),
            StatusCode::kInvalidArgument);

  OpenConfig bad_workload = Figure1Config();
  bad_workload.workload_spec = "no-such-workload";
  EXPECT_FALSE(manager.Open(key, bad_workload).ok());
  // A failed open leaves no residue: the key is free again.
  ASSERT_TRUE(manager.Open(key, Figure1Config()).ok());
  EXPECT_EQ(manager.Open(key, Figure1Config()).status().code(),
            StatusCode::kAlreadyExists);

  OpenConfig bad_strategy = Figure1Config();
  bad_strategy.strategy = "no-such-strategy";
  EXPECT_FALSE(manager.Open({"acme", "s2"}, bad_strategy).ok());

  EXPECT_EQ(manager.Feedback(key, 999, Feedback::kConfirm, std::nullopt)
                .ValueOrDie()
                .outcome,
            "unknown-id");
}

TEST(SessionManagerTest, AdmissionCapRejectsBeyondMaxSessions) {
  SessionManagerOptions options = TestOptions("gdr_spill_cap");
  options.max_sessions = 2;
  SessionManager manager(options);
  ASSERT_TRUE(manager.Open({"t", "s1"}, Figure1Config()).ok());
  ASSERT_TRUE(manager.Open({"t", "s2"}, Figure1Config()).ok());
  EXPECT_EQ(manager.Open({"t", "s3"}, Figure1Config()).status().code(),
            StatusCode::kFailedPrecondition);
  // Closing one frees a slot.
  ASSERT_TRUE(manager.Close({"t", "s1"}).ok());
  EXPECT_TRUE(manager.Open({"t", "s3"}, Figure1Config()).ok());
}

TEST(SessionManagerTest, EvictedAndRehydratedMatchesResidentControl) {
  SessionManager manager(TestOptions("gdr_spill_differential"));
  const Backend backend = MakeSessionManagerBackend(&manager);
  const SessionKey control{"diff", "control"};
  const SessionKey churned{"diff", "churned"};
  ASSERT_TRUE(manager.Open(control, Figure1Config()).ok());
  ASSERT_TRUE(manager.Open(churned, Figure1Config()).ok());

  DriveToDone(backend, control, /*evict_between=*/false);
  DriveToDone(backend, churned, /*evict_between=*/true);

  const auto control_cells = manager.Dump(control);
  const auto churned_cells = manager.Dump(churned);
  ASSERT_TRUE(control_cells.ok());
  ASSERT_TRUE(churned_cells.ok());
  EXPECT_EQ(*churned_cells, *control_cells)
      << "eviction/rehydration changed the repair outcome";

  const WireServerStats stats = manager.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.rehydrations, 0u);
}

TEST(SessionManagerTest, MemoryBudgetEvictsColdSessionsTransparently) {
  // A budget below one session's footprint: the manager must thrash
  // sessions to disk behind the scenes while every call still succeeds.
  SessionManagerOptions options = TestOptions("gdr_spill_budget");
  options.memory_budget_bytes = 1;
  SessionManager manager(options);
  const Backend backend = MakeSessionManagerBackend(&manager);
  const std::vector<SessionKey> keys = {
      {"t", "a"}, {"t", "b"}, {"t", "c"}};
  for (const SessionKey& key : keys) {
    ASSERT_TRUE(manager.Open(key, Figure1Config()).ok());
  }
  for (const SessionKey& key : keys) {
    DriveToDone(backend, key, /*evict_between=*/false);
  }
  EXPECT_GT(manager.Stats().evictions, 0u);

  // Same drive on an unconstrained manager: identical finals.
  SessionManager unconstrained(TestOptions("gdr_spill_budget_control"));
  const Backend control = MakeSessionManagerBackend(&unconstrained);
  ASSERT_TRUE(unconstrained.Open(keys[0], Figure1Config()).ok());
  DriveToDone(control, keys[0], /*evict_between=*/false);
  EXPECT_EQ(unconstrained.Stats().evictions, 0u);
  for (const SessionKey& key : keys) {
    EXPECT_EQ(*manager.Dump(key), *unconstrained.Dump(keys[0]));
  }
}

TEST(SessionManagerTest, CloseDropsTheSpillFile) {
  SessionManagerOptions options = TestOptions("gdr_spill_close");
  SessionManager manager(options);
  const SessionKey key{"t", "s"};
  ASSERT_TRUE(manager.Open(key, Figure1Config()).ok());
  ASSERT_TRUE(manager.Evict(key).ok());
  const std::string spill =
      (std::filesystem::path(options.spill_dir) / "t__s.snapshot").string();
  EXPECT_TRUE(std::filesystem::exists(spill));
  ASSERT_TRUE(manager.Close(key).ok());
  EXPECT_FALSE(std::filesystem::exists(spill));
}

// ---------------------------------------------------------------------------
// The line protocol.
// ---------------------------------------------------------------------------

std::vector<std::string> RunScript(const std::string& script,
                                   const std::string& spill_name) {
  SessionManager manager(TestOptions(spill_name));
  const Backend backend = MakeSessionManagerBackend(&manager);
  std::istringstream in(script);
  std::ostringstream out;
  ServerLoop(backend, in, out);
  std::vector<std::string> lines;
  std::istringstream replies(out.str());
  std::string line;
  while (std::getline(replies, line)) lines.push_back(line);
  return lines;
}

TEST(ProtocolTest, ScriptedSessionSpeaksTheGrammar) {
  const auto lines = RunScript(
      "open acme s1 figure1 seed=7 budget=40\n"
      "# a comment, ignored without reply\n"
      "\n"
      "next acme s1\n"
      "stats\n"
      "snapshot acme s1\n"
      "evict acme s1\n"
      "close acme s1\n"
      "quit\n",
      "gdr_spill_protocol");
  ASSERT_GE(lines.size(), 7u);
  EXPECT_EQ(lines[0], "OK state=ranking dirty=5 pool=10");
  EXPECT_EQ(lines[1].rfind("OK state=awaiting-feedback n=", 0), 0u);
  // The counted suggestion lines follow the next-header.
  EXPECT_EQ(lines[2].rfind("S ", 0), 0u);
  std::size_t i = 2;
  while (i < lines.size() && lines[i].rfind("S ", 0) == 0) ++i;
  EXPECT_EQ(lines[i].rfind("OK resident=1 evicted=0", 0), 0u);
  EXPECT_EQ(lines[i + 1].rfind("OK bytes=", 0), 0u);  // snapshot
  EXPECT_EQ(lines[i + 2].rfind("OK bytes=", 0), 0u);  // evict
  EXPECT_EQ(lines[i + 3], "OK closed");
  EXPECT_EQ(lines[i + 4], "OK bye");
}

TEST(ProtocolTest, MalformedInputGetsTypedErrorsNeverCrashes) {
  const auto lines = RunScript(
      "bogus\n"
      "open\n"
      "open acme s1\n"
      "open acme s1 no-such-workload\n"
      "open acme s1 figure1 seed=NaN\n"
      "open acme s1 figure1 seed=-1\n"
      "open acme s1 figure1 ns=0\n"
      "open acme s1 figure1 frobnicate=1\n"
      "next acme missing\n"
      "feedback acme s1 12x confirm\n"
      "feedback acme s1 1 maybe\n"
      "feedback acme s1 1 reject zz\n"
      "append acme s1 nothex\n"
      "quit\n",
      "gdr_spill_protocol_errors");
  ASSERT_EQ(lines.size(), 14u);
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    EXPECT_EQ(lines[i].rfind("ERR ", 0), 0u) << lines[i];
  }
  EXPECT_EQ(lines[8].rfind("ERR NotFound", 0), 0u);
  EXPECT_EQ(lines[9].rfind("ERR InvalidArgument", 0), 0u);   // "12x"
  EXPECT_NE(lines[9].find("12x"), std::string::npos);
  EXPECT_EQ(lines[13], "OK bye");
}

TEST(ProtocolTest, AppendCarriesArbitraryBytesInHex) {
  SessionManager manager(TestOptions("gdr_spill_append"));
  const Backend backend = MakeSessionManagerBackend(&manager);
  std::string reply;
  ASSERT_TRUE(HandleCommand(backend, "open t s figure1", &reply));

  // A seventh customer contradicting phi1 (ZIP=46360 -> CT=Michigan City),
  // cells hex-encoded: Gil|H2|Oak Ave|Michigan Cty|IN|46360.
  const auto hex_row = [](const std::vector<std::string>& cells) {
    std::string row;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) row += ",";
      row += EncodeHex(cells[i]);
    }
    return row;
  };
  reply.clear();
  ASSERT_TRUE(HandleCommand(
      backend,
      "append t s " + hex_row({"Gil", "H2", "Oak Ave", "Michigan Cty", "IN",
                               "46360"}),
      &reply));
  EXPECT_EQ(reply, "OK appended=1 newly-dirty=1 revived=0\n");

  // Arity mismatch is a typed error, not a crash.
  reply.clear();
  ASSERT_TRUE(HandleCommand(
      backend, "append t s " + hex_row({"too", "short"}), &reply));
  EXPECT_EQ(reply.rfind("ERR ", 0), 0u);

  // The appended row round-trips through dump (7 rows now).
  reply.clear();
  ASSERT_TRUE(HandleCommand(backend, "dump t s", &reply));
  EXPECT_EQ(reply.rfind("OK n=42\n", 0), 0u);
  EXPECT_NE(reply.find("C " + EncodeHex("Gil")), std::string::npos);
}

TEST(ProtocolTest, QuitStopsTheLoop) {
  SessionManager manager(TestOptions("gdr_spill_quit"));
  const Backend backend = MakeSessionManagerBackend(&manager);
  std::string reply;
  EXPECT_FALSE(HandleCommand(backend, "quit", &reply));
  EXPECT_EQ(reply, "OK bye\n");

  std::istringstream in("stats\nquit\nstats\n");
  std::ostringstream out;
  EXPECT_EQ(ServerLoop(backend, in, out), 2u);  // the trailing stats never ran
}

TEST(SessionManagerTest, StatsReportSerialBackendWithoutPool) {
  // num_threads=1 (the default): ranking is serial, no pool is built, and
  // the stats present the serial facts rather than garbage.
  SessionManager manager(TestOptions("gdr_spill_pool_stats_serial"));
  const WireServerStats stats = manager.Stats();
  EXPECT_EQ(stats.pool_threads, 1u);
  EXPECT_EQ(stats.pool_queue_depth, 0u);
  EXPECT_EQ(stats.pool_tasks_completed, 0u);
}

TEST(SessionManagerTest, StatsSurfaceSharedRankingPoolCounters) {
  SessionManagerOptions options = TestOptions("gdr_spill_pool_stats");
  options.num_threads = 2;
  SessionManager manager(options);
  EXPECT_EQ(manager.Stats().pool_threads, 2u);

  const Backend backend = MakeSessionManagerBackend(&manager);
  ASSERT_TRUE(manager.Open({"t", "s"}, Figure1Config()).ok());
  DriveToDone(backend, {"t", "s"}, /*evict_between=*/false);

  const WireServerStats stats = manager.Stats();
  EXPECT_EQ(stats.pool_threads, 2u);
  // The drive fanned VOI ranking onto the shared pool at least once.
  EXPECT_GT(stats.pool_tasks_completed, 0u);
}

TEST(ProtocolTest, StatsReplyCarriesPoolFields) {
  const auto lines = RunScript("stats\nquit\n", "gdr_spill_pool_proto");
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("OK resident=0", 0), 0u);
  EXPECT_NE(lines[0].find(" pool-threads="), std::string::npos);
  EXPECT_NE(lines[0].find(" pool-depth="), std::string::npos);
  EXPECT_NE(lines[0].find(" pool-completed="), std::string::npos);
}

}  // namespace
}  // namespace gdr::server
