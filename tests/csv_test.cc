#include "util/csv.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace gdr {
namespace {

TEST(CsvTest, ParseSimpleLine) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParseEmptyFields) {
  auto fields = ParseCsvLine(",x,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"", "x", ""}));
}

TEST(CsvTest, ParseQuotedFieldWithComma) {
  auto fields = ParseCsvLine("\"Michigan City, IN\",46360");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "Michigan City, IN");
  EXPECT_EQ((*fields)[1], "46360");
}

TEST(CsvTest, ParseEscapedQuote) {
  auto fields = ParseCsvLine("\"say \"\"hi\"\"\",b");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "say \"hi\"");
}

TEST(CsvTest, UnterminatedQuoteFails) {
  auto fields = ParseCsvLine("\"oops,b");
  EXPECT_FALSE(fields.ok());
  EXPECT_EQ(fields.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, FormatQuotesWhenNeeded) {
  EXPECT_EQ(FormatCsvLine({"a", "b"}), "a,b");
  EXPECT_EQ(FormatCsvLine({"a,b"}), "\"a,b\"");
  EXPECT_EQ(FormatCsvLine({"say \"hi\""}), "\"say \"\"hi\"\"\"");
}

class CsvRoundTripTest
    : public ::testing::TestWithParam<std::vector<std::string>> {};

TEST_P(CsvRoundTripTest, FormatThenParseIsIdentity) {
  const std::vector<std::string>& fields = GetParam();
  auto parsed = ParseCsvLine(FormatCsvLine(fields));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, fields);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CsvRoundTripTest,
    ::testing::Values(std::vector<std::string>{"plain"},
                      std::vector<std::string>{"with,comma", "x"},
                      std::vector<std::string>{"with \"quote\"", ""},
                      std::vector<std::string>{"", "", ""},
                      std::vector<std::string>{"newline\ninside", "y"},
                      std::vector<std::string>{"Fort Wayne", "46802", "IN"}));

TEST(CsvTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gdr_csv_test.csv").string();
  const std::vector<std::vector<std::string>> rows = {
      {"Name", "City", "Zip"},
      {"A, Person", "Michigan City", "46360"},
      {"B \"Quoted\"", "Westville", "46391"},
  };
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  auto read = ReadCsvFile("/nonexistent/path/file.csv");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, ParseTrailingEmptyField) {
  auto fields = ParseCsvLine("a,b,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", ""}));
  auto quoted = ParseCsvLine("a,\"\"");
  ASSERT_TRUE(quoted.ok());
  EXPECT_EQ(*quoted, (std::vector<std::string>{"a", ""}));
}

TEST(CsvTest, ParseCsvSplitsRecordsAndSkipsBlankLines) {
  auto rows = ParseCsv("a,b\n\nc,d\ne,f");  // no trailing newline
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ((*rows)[2], (std::vector<std::string>{"e", "f"}));
}

TEST(CsvTest, ParseCsvHandlesCrlfAndTrailingEmptyFields) {
  auto rows = ParseCsv("a,b,\r\nc,,\r\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b", ""}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "", ""}));
}

TEST(CsvTest, ParseCsvQuotedFieldSpansLines) {
  auto rows = ParseCsv("\"two\nlines\",x\nplain,y\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"two\nlines", "x"}));
  // Quoted content is byte-preserved: CRLF inside quotes stays CRLF, so
  // cells containing "\r\n" survive a write→read round trip.
  auto crlf = ParseCsv("\"two\r\nlines\",x\r\n");
  ASSERT_TRUE(crlf.ok());
  EXPECT_EQ((*crlf)[0][0], "two\r\nlines");
}

TEST(CsvTest, SingleEmptyFieldRowRoundTrips) {
  EXPECT_EQ(FormatCsvLine({""}), "\"\"");
  auto rows = ParseCsv("a\n\"\"\nb\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{""}));
  const std::string path =
      (std::filesystem::temp_directory_path() / "gdr_csv_empty_test.csv")
          .string();
  const std::vector<std::vector<std::string>> table = {{"x"}, {""}, {"y"}};
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, table);
  std::remove(path.c_str());
}

TEST(CsvTest, ParseCsvLineRejectsMultipleRecords) {
  auto parsed = ParseCsvLine("a,b\nc,d");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  // Empty input stays one empty field (legacy behavior).
  auto empty = ParseCsvLine("");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, std::vector<std::string>{""});
}

TEST(CsvTest, ParseCsvUnterminatedQuoteFails) {
  auto rows = ParseCsv("a,b\n\"open,c\n");
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, ParseCsvEscapedQuotes) {
  auto rows = ParseCsv("\"say \"\"hi\"\"\",b\n");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"say \"hi\"", "b"}));
}

TEST(CsvTest, FileRoundTripWithEmbeddedNewlines) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gdr_csv_nl_test.csv")
          .string();
  const std::vector<std::vector<std::string>> rows = {
      {"Name", "Note"},
      {"A", "line one\nline two"},
      {"B", "trailing"},
      {"C", ""},
  };
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadCsvFileAcceptsCrlfFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gdr_csv_crlf_test.csv")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "A,B\r\n1,2\r\n3,4\r\n";
  }
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 3u);
  EXPECT_EQ((*read)[2], (std::vector<std::string>{"3", "4"}));
  std::remove(path.c_str());
}

TEST(CsvTest, WriteCsvLineMatchesFormat) {
  std::ostringstream out;
  WriteCsvLine(out, {"a", "with,comma", "q\"q"});
  EXPECT_EQ(out.str(), "a,\"with,comma\",\"q\"\"q\"\n");
}

// A corpus whose correct parse depends on lookahead across every byte
// boundary: escaped "" pairs, a CRLF, a quoted field spanning records,
// empty fields, and no trailing newline on the final record.
constexpr std::string_view kTrickyCsv =
    "a,\"say \"\"hi\"\"\",\r\n"
    "\"two\r\nlines\",x,\"\"\n"
    "\n"
    ",,\n"
    "last,\"q\"\"q\",z";

std::vector<std::vector<std::string>> ParseInChunks(
    std::string_view text, const std::vector<std::size_t>& cuts) {
  CsvChunkParser parser;
  std::vector<std::vector<std::string>> rows;
  std::size_t start = 0;
  for (std::size_t cut : cuts) {
    EXPECT_TRUE(parser.Consume(text.substr(start, cut - start), &rows).ok());
    start = cut;
  }
  EXPECT_TRUE(parser.Consume(text.substr(start), &rows).ok());
  EXPECT_TRUE(parser.Finish(&rows).ok());
  return rows;
}

TEST(CsvChunkParserTest, ByteAtATimeMatchesParseCsv) {
  const auto whole = ParseCsv(kTrickyCsv);
  ASSERT_TRUE(whole.ok());
  std::vector<std::size_t> every_byte;
  for (std::size_t i = 1; i < kTrickyCsv.size(); ++i) every_byte.push_back(i);
  EXPECT_EQ(ParseInChunks(kTrickyCsv, every_byte), *whole);
}

TEST(CsvChunkParserTest, EverySingleSplitPointMatchesParseCsv) {
  const auto whole = ParseCsv(kTrickyCsv);
  ASSERT_TRUE(whole.ok());
  for (std::size_t cut = 0; cut <= kTrickyCsv.size(); ++cut) {
    EXPECT_EQ(ParseInChunks(kTrickyCsv, {cut}), *whole)
        << "split at byte " << cut;
  }
}

TEST(CsvChunkParserTest, EmptyChunksAreHarmless) {
  const auto whole = ParseCsv(kTrickyCsv);
  ASSERT_TRUE(whole.ok());
  CsvChunkParser parser;
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(parser.Consume("", &rows).ok());
  ASSERT_TRUE(parser.Consume(kTrickyCsv, &rows).ok());
  ASSERT_TRUE(parser.Consume("", &rows).ok());
  ASSERT_TRUE(parser.Finish(&rows).ok());
  EXPECT_EQ(rows, *whole);
}

TEST(CsvChunkParserTest, RecordsEmittedCountsClosedRecords) {
  CsvChunkParser parser;
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(parser.Consume("a,b\nc,", &rows).ok());
  EXPECT_EQ(parser.records_emitted(), 1u);  // "c," is still open
  ASSERT_TRUE(parser.Finish(&rows).ok());
  EXPECT_EQ(parser.records_emitted(), 2u);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", ""}));
}

TEST(CsvChunkParserTest, UnterminatedQuoteFailsAtFinish) {
  CsvChunkParser parser;
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(parser.Consume("a,\"open", &rows).ok());
  const Status finish = parser.Finish(&rows);
  EXPECT_FALSE(finish.ok());
  EXPECT_EQ(finish.code(), StatusCode::kInvalidArgument);
}

TEST(CsvChunkParserTest, ConsumeAfterFinishFails) {
  CsvChunkParser parser;
  std::vector<std::vector<std::string>> rows;
  ASSERT_TRUE(parser.Consume("a\n", &rows).ok());
  ASSERT_TRUE(parser.Finish(&rows).ok());
  ASSERT_TRUE(parser.Finish(&rows).ok());  // idempotent once successful
  EXPECT_FALSE(parser.Consume("b\n", &rows).ok());
}

}  // namespace
}  // namespace gdr
