#include "util/csv.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace gdr {
namespace {

TEST(CsvTest, ParseSimpleLine) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParseEmptyFields) {
  auto fields = ParseCsvLine(",x,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"", "x", ""}));
}

TEST(CsvTest, ParseQuotedFieldWithComma) {
  auto fields = ParseCsvLine("\"Michigan City, IN\",46360");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "Michigan City, IN");
  EXPECT_EQ((*fields)[1], "46360");
}

TEST(CsvTest, ParseEscapedQuote) {
  auto fields = ParseCsvLine("\"say \"\"hi\"\"\",b");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ((*fields)[0], "say \"hi\"");
}

TEST(CsvTest, UnterminatedQuoteFails) {
  auto fields = ParseCsvLine("\"oops,b");
  EXPECT_FALSE(fields.ok());
  EXPECT_EQ(fields.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, FormatQuotesWhenNeeded) {
  EXPECT_EQ(FormatCsvLine({"a", "b"}), "a,b");
  EXPECT_EQ(FormatCsvLine({"a,b"}), "\"a,b\"");
  EXPECT_EQ(FormatCsvLine({"say \"hi\""}), "\"say \"\"hi\"\"\"");
}

class CsvRoundTripTest
    : public ::testing::TestWithParam<std::vector<std::string>> {};

TEST_P(CsvRoundTripTest, FormatThenParseIsIdentity) {
  const std::vector<std::string>& fields = GetParam();
  auto parsed = ParseCsvLine(FormatCsvLine(fields));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, fields);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CsvRoundTripTest,
    ::testing::Values(std::vector<std::string>{"plain"},
                      std::vector<std::string>{"with,comma", "x"},
                      std::vector<std::string>{"with \"quote\"", ""},
                      std::vector<std::string>{"", "", ""},
                      std::vector<std::string>{"newline\ninside", "y"},
                      std::vector<std::string>{"Fort Wayne", "46802", "IN"}));

TEST(CsvTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gdr_csv_test.csv").string();
  const std::vector<std::vector<std::string>> rows = {
      {"Name", "City", "Zip"},
      {"A, Person", "Michigan City", "46360"},
      {"B \"Quoted\"", "Westville", "46391"},
  };
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  auto read = ReadCsvFile("/nonexistent/path/file.csv");
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace gdr
