#include "core/quality.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

struct QualityWorld {
  Schema schema;
  Table clean;
  Table dirty;
  RuleSet rules;

  QualityWorld()
      : schema(*Schema::Make({"CT", "ZIP"})),
        clean(schema),
        dirty(schema),
        rules(schema) {
    // Four tuples in the 46360 context, one clean outsider.
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(clean.AppendRow({"Michigan City", "46360"}).ok());
    }
    EXPECT_TRUE(clean.AppendRow({"Westville", "46391"}).ok());
    dirty = clean;
    dirty.Set(0, 0, "Michigan Cty");
    dirty.Set(1, 0, "Mich City");
    EXPECT_TRUE(
        rules.AddRuleFromString("phi1", "ZIP=46360 -> CT=Michigan City").ok());
    EXPECT_TRUE(
        rules.AddRuleFromString("phi4", "ZIP=46391 -> CT=Westville").ok());
  }
};

TEST(ContextRuleWeightsTest, MatchesContextShare) {
  QualityWorld w;
  ViolationIndex index(&w.dirty, &w.rules);
  const std::vector<double> weights = ContextRuleWeights(index);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0], 4.0 / 5.0);  // 46360 context
  EXPECT_DOUBLE_EQ(weights[1], 1.0 / 5.0);  // 46391 context
}

TEST(QualityEvaluatorTest, LossReflectsViolations) {
  QualityWorld w;
  ViolationIndex index(&w.dirty, &w.rules);
  const std::vector<double> weights = ContextRuleWeights(index);
  QualityEvaluator evaluator(w.clean, &w.rules, weights);

  // Rule phi1: |Dopt |= phi1| = 4 (all in context clean), |D |= phi1| = 2.
  // ql = (4-2)/4 = 0.5, weighted by 0.8 -> 0.4. phi4 is clean: ql = 0.
  EXPECT_NEAR(evaluator.Loss(index), 0.8 * 0.5, 1e-12);
}

TEST(QualityEvaluatorTest, LossZeroOnCleanInstance) {
  QualityWorld w;
  Table clean_copy = w.clean;
  ViolationIndex index(&clean_copy, &w.rules);
  QualityEvaluator evaluator(w.clean, &w.rules, ContextRuleWeights(index));
  EXPECT_NEAR(evaluator.Loss(index), 0.0, 1e-12);
}

TEST(QualityEvaluatorTest, ImprovementPct) {
  QualityWorld w;
  ViolationIndex index(&w.dirty, &w.rules);
  QualityEvaluator evaluator(w.clean, &w.rules, ContextRuleWeights(index));
  const double initial = evaluator.Loss(index);
  EXPECT_NEAR(evaluator.ImprovementPct(index, initial), 0.0, 1e-9);

  // Fix one of the two dirty cities: half the loss recovered.
  index.ApplyCellChange(0, 0, std::string_view("Michigan City"));
  EXPECT_NEAR(evaluator.ImprovementPct(index, initial), 50.0, 1e-9);

  index.ApplyCellChange(1, 0, std::string_view("Michigan City"));
  EXPECT_NEAR(evaluator.ImprovementPct(index, initial), 100.0, 1e-9);
}

TEST(QualityEvaluatorTest, ImprovementWithZeroInitialLossIsFull) {
  QualityWorld w;
  Table clean_copy = w.clean;
  ViolationIndex index(&clean_copy, &w.rules);
  QualityEvaluator evaluator(w.clean, &w.rules, ContextRuleWeights(index));
  EXPECT_DOUBLE_EQ(evaluator.ImprovementPct(index, 0.0), 100.0);
}

TEST(RepairAccuracyTest, ThreeWayComparison) {
  QualityWorld w;
  Table current = w.dirty;
  // One correct repair, one wrong repair, one dirty cell untouched? There
  // are exactly two dirty cells; repair cell (0,0) correctly and mangle a
  // clean cell (4,0).
  current.Set(0, 0, "Michigan City");
  current.Set(4, 0, "Oops");
  auto acc = ComputeRepairAccuracy(w.dirty, current, w.clean);
  ASSERT_TRUE(acc.ok());
  EXPECT_EQ(acc->initially_incorrect_cells, 2u);
  EXPECT_EQ(acc->updated_cells, 2u);
  EXPECT_EQ(acc->correctly_updated_cells, 1u);
  EXPECT_DOUBLE_EQ(acc->Precision(), 0.5);
  EXPECT_DOUBLE_EQ(acc->Recall(), 0.5);
}

TEST(RepairAccuracyTest, NoUpdatesGivesPerfectPrecision) {
  RepairAccuracy acc;
  acc.initially_incorrect_cells = 5;
  EXPECT_DOUBLE_EQ(acc.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(acc.Recall(), 0.0);
}

TEST(RepairAccuracyTest, CleanDatabaseGivesPerfectRecall) {
  RepairAccuracy acc;
  EXPECT_DOUBLE_EQ(acc.Recall(), 1.0);
}

TEST(RepairAccuracyTest, RejectsMismatchedTables) {
  QualityWorld w;
  Table other(*Schema::Make({"X"}));
  EXPECT_FALSE(ComputeRepairAccuracy(w.dirty, other, w.clean).ok());
}

}  // namespace
}  // namespace gdr
