#include "data/value_dict.h"

#include <gtest/gtest.h>

namespace gdr {
namespace {

TEST(ValueDictTest, InternAssignsDenseIds) {
  ValueDict dict;
  EXPECT_EQ(dict.Intern("a"), 0);
  EXPECT_EQ(dict.Intern("b"), 1);
  EXPECT_EQ(dict.Intern("c"), 2);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(ValueDictTest, InternIsIdempotent) {
  ValueDict dict;
  const ValueId a = dict.Intern("same");
  EXPECT_EQ(dict.Intern("same"), a);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(ValueDictTest, LookupFindsInternedOnly) {
  ValueDict dict;
  dict.Intern("present");
  EXPECT_NE(dict.Lookup("present"), kInvalidValueId);
  EXPECT_EQ(dict.Lookup("absent"), kInvalidValueId);
  EXPECT_TRUE(dict.Contains("present"));
  EXPECT_FALSE(dict.Contains("absent"));
}

TEST(ValueDictTest, ToStringRoundTrips) {
  ValueDict dict;
  const ValueId id = dict.Intern("Fort Wayne");
  EXPECT_EQ(dict.ToString(id), "Fort Wayne");
}

TEST(ValueDictTest, EmptyStringIsAValue) {
  ValueDict dict;
  const ValueId id = dict.Intern("");
  EXPECT_EQ(dict.ToString(id), "");
  EXPECT_TRUE(dict.Contains(""));
}

TEST(ValueDictTest, ManyValuesStayConsistent) {
  ValueDict dict;
  for (int i = 0; i < 1000; ++i) {
    const ValueId id = dict.Intern("value-" + std::to_string(i));
    EXPECT_EQ(id, i);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(dict.ToString(i), "value-" + std::to_string(i));
    EXPECT_EQ(dict.Lookup("value-" + std::to_string(i)), i);
  }
}

}  // namespace
}  // namespace gdr
