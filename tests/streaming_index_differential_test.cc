// The incremental-vs-rebuild differential suite pinning streaming
// ingestion: for random row-arrival orders, chunk sizes, and interleaved
// repairs, a ViolationIndex grown through AppendRow/AppendRows must be
// bit-identical — group membership, tallies, violation bitmap, rule
// weights, VOI scores — to an index built from scratch over the final
// table.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cfd/violation_index.h"
#include "core/grouping.h"
#include "core/quality.h"
#include "core/voi.h"
#include "repair/repair_state.h"
#include "repair/update_generator.h"
#include "repair/update_pool.h"
#include "sim/stream_gen.h"
#include "util/rng.h"
#include "workload/row_stream.h"

namespace gdr {
namespace {

Schema TestSchema() { return *Schema::Make({"STR", "CT", "STT", "ZIP"}); }

RuleSet TestRules() {
  RuleSet rules(TestSchema());
  EXPECT_TRUE(
      rules.AddRuleFromString("c1", "ZIP=46360 -> CT=Michigan City ; STT=IN")
          .ok());
  EXPECT_TRUE(
      rules.AddRuleFromString("c2", "ZIP=46391 -> CT=Westville").ok());
  EXPECT_TRUE(rules.AddRuleFromString("v1", "STR, CT -> ZIP").ok());
  EXPECT_TRUE(rules.AddRuleFromString("v2", "ZIP -> CT").ok());
  return rules;
}

std::vector<std::string> RandomRow(Rng* rng) {
  const char* streets[] = {"Main St", "Oak Ave", "Sherden Rd"};
  const char* cities[] = {"Fort Wayne", "Westville", "Michigan City"};
  const char* states[] = {"IN", "IND"};
  const char* zips[] = {"46825", "46391", "46360", "46802"};
  return {streets[rng->NextBounded(3)], cities[rng->NextBounded(3)],
          states[rng->NextBounded(2)], zips[rng->NextBounded(4)]};
}

// Every observable of the incrementally grown index must match a fresh
// build over a copy of its table (the copy shares value dictionaries, so
// even ValueId-keyed and double-valued comparisons are exact).
void ExpectMatchesRebuild(const ViolationIndex& index, const RuleSet& rules) {
  Table copy = index.table();
  ViolationIndex rebuilt(&copy, &rules);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleId rule = static_cast<RuleId>(i);
    EXPECT_EQ(index.RuleViolations(rule), rebuilt.RuleViolations(rule));
    EXPECT_EQ(index.ViolatingCount(rule), rebuilt.ViolatingCount(rule));
    EXPECT_EQ(index.ContextCount(rule), rebuilt.ContextCount(rule));
    EXPECT_EQ(index.SatisfyingCount(rule), rebuilt.SatisfyingCount(rule));
    EXPECT_EQ(index.GroupStorage(rule).live_groups(),
              rebuilt.GroupStorage(rule).slots)
        << "rule " << i;
  }
  EXPECT_EQ(index.TotalViolations(), rebuilt.TotalViolations());
  EXPECT_EQ(index.DirtyRows(), rebuilt.DirtyRows());
  for (std::size_t r = 0; r < copy.num_rows(); ++r) {
    const RowId row = static_cast<RowId>(r);
    for (std::size_t i = 0; i < rules.size(); ++i) {
      const RuleId rule = static_cast<RuleId>(i);
      EXPECT_EQ(index.TupleViolation(row, rule),
                rebuilt.TupleViolation(row, rule))
          << "row " << r << " rule " << i;
      EXPECT_EQ(index.GroupTotal(row, rule), rebuilt.GroupTotal(row, rule))
          << "row " << r << " rule " << i;
      EXPECT_EQ(index.GroupMembers(row, rule), rebuilt.GroupMembers(row, rule))
          << "row " << r << " rule " << i;
      EXPECT_EQ(index.ViolationPartners(row, rule),
                rebuilt.ViolationPartners(row, rule))
          << "row " << r << " rule " << i;
    }
  }
  // Rule weights and VOI scores ride on the aggregates; demand bit-equal
  // doubles, not approximate ones.
  const std::vector<double> weights = ContextRuleWeights(index);
  EXPECT_EQ(weights, ContextRuleWeights(rebuilt));

  UpdatePool pool;
  RepairState state;
  Table* mutable_table = &copy;  // generator needs a non-const table
  UpdateGenerator generator(&rebuilt, mutable_table, &state);
  for (RowId row : rebuilt.DirtyRows()) {
    for (std::size_t a = 0; a < copy.num_attrs(); ++a) {
      if (auto update =
              generator.UpdateAttributeTuple(row, static_cast<AttrId>(a))) {
        pool.Upsert(*update);
      }
    }
  }
  const std::vector<UpdateGroup> groups = GroupUpdates(pool);
  const VoiRanker streamed_ranker(&index, &weights);
  const VoiRanker rebuilt_ranker(&rebuilt, &weights);
  const auto confirm = [](const Update& u) { return u.score; };
  const VoiRanker::Ranking streamed_ranking =
      streamed_ranker.Rank(groups, confirm);
  const VoiRanker::Ranking rebuilt_ranking =
      rebuilt_ranker.Rank(groups, confirm);
  EXPECT_EQ(streamed_ranking.scores, rebuilt_ranking.scores);
  EXPECT_EQ(streamed_ranking.order, rebuilt_ranking.order);
}

// The tentpole property: any arrival order, any chunking — same index.
class StreamingDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(StreamingDifferentialTest, ChunkedAppendsMatchRebuild) {
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 2654435761ULL + 17);
  const RuleSet rules = TestRules();

  // One pool of rows, arriving in a seed-dependent order.
  std::vector<std::vector<std::string>> arrivals;
  for (int i = 0; i < 120; ++i) arrivals.push_back(RandomRow(&rng));
  rng.Shuffle(arrivals);

  // A seed-dependent prefix is already present when the index is built;
  // the rest streams in through AppendRow / AppendRows.
  Table table(rules.schema());
  const std::size_t preloaded = rng.NextBounded(arrivals.size() / 2);
  for (std::size_t i = 0; i < preloaded; ++i) {
    ASSERT_TRUE(table.AppendRow(arrivals[i]).ok());
  }
  ViolationIndex index(&table, &rules);

  std::size_t next = preloaded;
  while (next < arrivals.size()) {
    const std::size_t chunk = std::min<std::size_t>(
        1 + rng.NextBounded(17), arrivals.size() - next);
    if (chunk == 1 && rng.NextBernoulli(0.5)) {
      const auto row = index.AppendRow(arrivals[next]);
      ASSERT_TRUE(row.ok());
      EXPECT_EQ(*row, static_cast<RowId>(next));
    } else {
      const std::vector<std::vector<std::string>> batch(
          arrivals.begin() + static_cast<std::ptrdiff_t>(next),
          arrivals.begin() + static_cast<std::ptrdiff_t>(next + chunk));
      const auto first = index.AppendRows(batch);
      ASSERT_TRUE(first.ok());
      EXPECT_EQ(*first, static_cast<RowId>(next));
    }
    next += chunk;
    if (rng.NextBounded(3) == 0) ExpectMatchesRebuild(index, rules);
  }
  EXPECT_EQ(table.num_rows(), arrivals.size());
  ExpectMatchesRebuild(index, rules);
}

TEST_P(StreamingDifferentialTest, AppendsInterleavedWithRepairsMatchRebuild) {
  // Streaming is not append-only in practice: the session repairs cells
  // between admissions. Random interleavings of ApplyCellChange and
  // appends must preserve the differential property.
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed ^ 0xFEEDFACEULL);
  const RuleSet rules = TestRules();

  Table table(rules.schema());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table.AppendRow(RandomRow(&rng)).ok());
  }
  ViolationIndex index(&table, &rules);

  for (int step = 0; step < 100; ++step) {
    if (rng.NextBounded(3) == 0) {
      std::vector<std::vector<std::string>> batch;
      const std::size_t chunk = 1 + rng.NextBounded(5);
      for (std::size_t i = 0; i < chunk; ++i) {
        batch.push_back(RandomRow(&rng));
      }
      ASSERT_TRUE(index.AppendRows(batch).ok());
    } else {
      const RowId row = static_cast<RowId>(rng.NextBounded(table.num_rows()));
      const AttrId attr =
          static_cast<AttrId>(rng.NextBounded(table.num_attrs()));
      const ValueId value =
          static_cast<ValueId>(rng.NextBounded(table.DomainSize(attr)));
      index.ApplyCellChange(row, attr, value);
    }
    if (step % 20 == 19) ExpectMatchesRebuild(index, rules);
  }
  ExpectMatchesRebuild(index, rules);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingDifferentialTest,
                         ::testing::Range(1, 11));

TEST(StreamingIndexTest, FailedBatchAppendChangesNothing) {
  const RuleSet rules = TestRules();
  Table table(rules.schema());
  Rng rng(9);
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(table.AppendRow(RandomRow(&rng)).ok());
  }
  ViolationIndex index(&table, &rules);
  const std::uint64_t version = index.version();
  const std::int64_t total = index.TotalViolations();
  const std::vector<RowId> dirty = index.DirtyRows();

  // Arity error in the middle of the batch: all-or-nothing demands the
  // table, the aggregates, and the version stay exactly as they were.
  const auto failed = index.AppendRows({{"Main St", "Westville", "IN", "46391"},
                                        {"Oak Ave", "too", "short"},
                                        {"Main St", "Westville", "IN", "46391"}});
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(table.num_rows(), 15u);
  EXPECT_EQ(index.version(), version);
  EXPECT_EQ(index.TotalViolations(), total);
  EXPECT_EQ(index.DirtyRows(), dirty);
  ExpectMatchesRebuild(index, rules);

  EXPECT_FALSE(index.AppendRows({}).ok());
  EXPECT_EQ(table.num_rows(), 15u);
}

TEST(StreamingIndexTest, AppendBumpsVersionOncePerCall) {
  const RuleSet rules = TestRules();
  Table table(rules.schema());
  ViolationIndex index(&table, &rules);
  const std::uint64_t v0 = index.version();
  ASSERT_TRUE(index
                  .AppendRows({{"Main St", "Westville", "IN", "46391"},
                               {"Oak Ave", "Westville", "IN", "46391"}})
                  .ok());
  EXPECT_EQ(index.version(), v0 + 1);
  ASSERT_TRUE(index.AppendRow({"Main St", "Westville", "IN", "46825"}).ok());
  EXPECT_EQ(index.version(), v0 + 2);
}

TEST(StreamingIndexTest, DeltaOverAppendedRowsMatchesRebuild) {
  // ViolationDelta is the hypothetical-scoring substrate; it must treat
  // appended rows exactly like original ones.
  const RuleSet rules = TestRules();
  Table table(rules.schema());
  Rng rng(31);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.AppendRow(RandomRow(&rng)).ok());
  }
  ViolationIndex index(&table, &rules);
  std::vector<std::vector<std::string>> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(RandomRow(&rng));
  ASSERT_TRUE(index.AppendRows(batch).ok());

  ViolationDelta delta(&index);
  Table mirror = table;
  for (int i = 0; i < 12; ++i) {
    const RowId row = static_cast<RowId>(rng.NextBounded(table.num_rows()));
    const AttrId attr =
        static_cast<AttrId>(rng.NextBounded(table.num_attrs()));
    const ValueId value =
        static_cast<ValueId>(rng.NextBounded(table.DomainSize(attr)));
    delta.SetCell(row, attr, value);
    mirror.SetById(row, attr, value);
  }
  // Merge a second overlay that also touches appended rows.
  ViolationDelta other(&index);
  const RowId appended_row = static_cast<RowId>(table.num_rows() - 1);
  const ValueId other_value = static_cast<ValueId>(
      rng.NextBounded(table.DomainSize(3)));
  other.SetCell(appended_row, 3, other_value);
  delta.Merge(other);
  if (other_value != table.id_at(appended_row, 3)) {
    mirror.SetById(appended_row, 3, other_value);
  }

  ViolationIndex rebuilt(&mirror, &rules);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const RuleId rule = static_cast<RuleId>(i);
    EXPECT_EQ(delta.RuleViolations(rule), rebuilt.RuleViolations(rule));
    EXPECT_EQ(delta.ViolatingCount(rule), rebuilt.ViolatingCount(rule));
    EXPECT_EQ(delta.ContextCount(rule), rebuilt.ContextCount(rule));
    EXPECT_EQ(delta.SatisfyingCount(rule), rebuilt.SatisfyingCount(rule));
  }
  EXPECT_EQ(delta.TotalViolations(), rebuilt.TotalViolations());
  EXPECT_EQ(delta.DirtyRows(), rebuilt.DirtyRows());
}

TEST(StreamingIndexTest, StreamGenChunkingIsContentInvariant) {
  // The generator adapter's defining property: rows depend only on their
  // index, so different chunk sizes deliver identical streams.
  StreamGenOptions options;
  options.records = 500;
  options.cities = 20;
  options.seed = 77;

  std::vector<std::vector<std::string>> by_7, by_64;
  auto s1 = MakeStreamGenStream(options);
  auto s2 = MakeStreamGenStream(options);
  ASSERT_TRUE(s1.ok() && s2.ok());
  while (*(*s1)->NextChunk(7, &by_7) > 0) {
  }
  while (*(*s2)->NextChunk(64, &by_64) > 0) {
  }
  EXPECT_EQ(by_7.size(), 500u);
  EXPECT_EQ(by_7, by_64);
}

TEST(StreamingIndexTest, StreamGenIngestMatchesRebuildAtScale) {
  // A miniature of bench_stream's CI gate, kept fast enough for ctest:
  // 4000 generated rows through chunked AppendRows vs one rebuild.
  StreamGenOptions options;
  options.records = 4000;
  options.cities = 80;
  options.dirty_fraction = 0.05;
  options.seed = 3;
  auto rules_or = StreamGenRules(options);
  ASSERT_TRUE(rules_or.ok());
  const RuleSet rules = *std::move(rules_or);
  auto stream_or = MakeStreamGenStream(options);
  ASSERT_TRUE(stream_or.ok());
  const std::unique_ptr<RowStream> stream = std::move(*stream_or);

  Table table(rules.schema());
  ViolationIndex index(&table, &rules);
  std::vector<std::vector<std::string>> chunk;
  while (true) {
    chunk.clear();
    const auto pulled = stream->NextChunk(257, &chunk);
    ASSERT_TRUE(pulled.ok());
    if (*pulled == 0) break;
    ASSERT_TRUE(index.AppendRows(chunk).ok());
  }
  EXPECT_EQ(table.num_rows(), 4000u);
  EXPECT_GT(index.DirtyRows().size(), 0u);
  ExpectMatchesRebuild(index, rules);
}

}  // namespace
}  // namespace gdr
