// Streaming admission through the session API: mid-stream
// snapshot/restore determinism, clean appends causing zero ranking churn,
// group merges, and kDone revival.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/grouping.h"
#include "core/session.h"

namespace gdr {
namespace {

Schema TestSchema() { return *Schema::Make({"City", "Zip", "State"}); }

RuleSet TestRules() {
  RuleSet rules(TestSchema());
  EXPECT_TRUE(rules.AddRuleFromString("v1", "City -> Zip").ok());
  EXPECT_TRUE(rules.AddRuleFromString("v2", "Zip -> City").ok());
  EXPECT_TRUE(
      rules.AddRuleFromString("c1", "City=Springfield -> State=IL").ok());
  return rules;
}

// Ground truth per RowId, in append order. Tests extend it alongside every
// AppendDirtyRows call so the feedback policy covers appended rows too.
using Truth = std::vector<std::vector<std::string>>;

Truth BaseTruth() {
  return {{"Springfield", "Z0", "IL"},
          {"Springfield", "Z0", "IL"},
          {"Shelby", "Z1", "IN"},
          {"Shelby", "Z1", "IN"},
          {"Dalton", "Z2", "OH"},
          {"Dalton", "Z2", "OH"}};
}

// The base dirty instance: row 1's zip and row 0's state are corrupted.
Table BaseDirty() {
  Table table(TestSchema());
  Truth rows = BaseTruth();
  rows[1][1] = "Zx";  // breaks City -> Zip (and Zip -> City) for Springfield
  rows[0][2] = "XX";  // breaks the constant rule c1
  for (const auto& row : rows) EXPECT_TRUE(table.AppendRow(row).ok());
  return table;
}

GdrOptions TestOptions() {
  GdrOptions options;
  options.strategy = Strategy::kGdrNoLearning;  // VOI ranking, no learner
  options.ns = 2;
  options.seed = 42;
  options.feedback_budget = 100;
  return options;
}

// Deterministic oracle: confirm the truth, retain already-correct cells,
// otherwise reject and volunteer the truth.
struct PolicyAnswer {
  Feedback feedback;
  std::optional<std::string> volunteered;
};

PolicyAnswer Answer(const Table& table, const Truth& truth,
                    const SuggestedUpdate& s) {
  const std::string& expected =
      truth[static_cast<std::size_t>(s.update.row)]
           [static_cast<std::size_t>(s.update.attr)];
  const std::string& suggested =
      table.dict(s.update.attr).ToString(s.update.value);
  if (suggested == expected) return {Feedback::kConfirm, std::nullopt};
  if (table.at(s.update.row, s.update.attr) == expected) {
    return {Feedback::kRetain, std::nullopt};
  }
  return {Feedback::kReject, expected};
}

// One suggestion rendered comparably across sessions (same dictionaries by
// construction, so ValueIds compare too — strings keep failures readable).
std::string TraceLine(const GdrSession& session, const SuggestedUpdate& s) {
  return std::to_string(s.update_id) + "|r" + std::to_string(s.update.row) +
         "|a" + std::to_string(s.update.attr) + "|" +
         session.table().dict(s.update.attr).ToString(s.update.value) + "|" +
         std::to_string(s.voi_score);
}

// Drives the session to completion with the policy, appending each trace
// line as it answers. Returns OK or the first error.
void Drive(GdrSession* session, const Truth& truth,
           std::vector<std::string>* trace) {
  while (session->state() != SessionState::kDone) {
    const auto batch = session->NextBatch();
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch->empty() && session->state() == SessionState::kDone) break;
    for (const SuggestedUpdate& s : *batch) {
      if (!session->IsLive(s.update_id)) continue;
      trace->push_back(TraceLine(*session, s));
      const PolicyAnswer answer = Answer(session->table(), truth, s);
      const auto outcome =
          session->SubmitFeedback(s.update_id, answer.feedback,
                                  answer.volunteered);
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    }
  }
}

std::vector<std::string> TableCells(const Table& table) {
  std::vector<std::string> cells;
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t a = 0; a < table.num_attrs(); ++a) {
      cells.push_back(table.at(static_cast<RowId>(r), static_cast<AttrId>(a)));
    }
  }
  return cells;
}

void ExpectOutcomesEqual(const SessionAppendOutcome& a,
                         const SessionAppendOutcome& b) {
  EXPECT_EQ(a.rows_appended, b.rows_appended);
  EXPECT_EQ(a.newly_dirty, b.newly_dirty);
  EXPECT_EQ(a.pool_delta, b.pool_delta);
  EXPECT_EQ(a.groups_rescored, b.groups_rescored);
  EXPECT_EQ(a.revived, b.revived);
}

TEST(SessionAppendTest, RestoredAndUninterruptedSessionsStayIdentical) {
  const RuleSet rules = TestRules();
  Truth truth = BaseTruth();

  // Session A: pull a batch, answer only its first suggestion (mid-batch),
  // snapshot.
  Table table_a = BaseDirty();
  GdrSession a(&table_a, &rules, TestOptions());
  ASSERT_TRUE(a.Start().ok());
  const auto first_batch = a.NextBatch();
  ASSERT_TRUE(first_batch.ok());
  ASSERT_FALSE(first_batch->empty());
  std::vector<std::string> trace_a;
  {
    const SuggestedUpdate& s = first_batch->front();
    trace_a.push_back(TraceLine(a, s));
    const PolicyAnswer answer = Answer(a.table(), truth, s);
    ASSERT_TRUE(
        a.SubmitFeedback(s.update_id, answer.feedback, answer.volunteered)
            .ok());
  }
  const SessionSnapshot snap = a.Snapshot();

  // Session B: restored from the snapshot over a pristine dirty copy.
  Table table_b = BaseDirty();
  GdrSession b(&table_b, &rules, TestOptions());
  const Status restored = b.Restore(snap);
  ASSERT_TRUE(restored.ok()) << restored.ToString();
  EXPECT_EQ(TableCells(table_a), TableCells(table_b));
  std::vector<std::string> trace_b = trace_a;  // shared prefix

  // Append the identical batch to both: a dirty Springfield row (joins the
  // broken City -> Zip group) and a clean new city pair.
  const std::vector<std::vector<std::string>> arrivals = {
      {"Springfield", "Z9", "IL"},
      {"Evanston", "Z5", "IL"},
      {"Evanston", "Z5", "IL"}};
  truth.push_back({"Springfield", "Z0", "IL"});
  truth.push_back({"Evanston", "Z5", "IL"});
  truth.push_back({"Evanston", "Z5", "IL"});
  const auto out_a = a.AppendDirtyRows(arrivals);
  const auto out_b = b.AppendDirtyRows(arrivals);
  ASSERT_TRUE(out_a.ok() && out_b.ok());
  EXPECT_GE(out_a->newly_dirty, 1u);
  ExpectOutcomesEqual(*out_a, *out_b);

  // Both sessions must deliver identical NextBatch() sequences from here
  // to completion, and end with identical tables and stats.
  Drive(&a, truth, &trace_a);
  Drive(&b, truth, &trace_b);
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_EQ(TableCells(table_a), TableCells(table_b));
  EXPECT_EQ(a.stats().user_feedback, b.stats().user_feedback);
  EXPECT_EQ(a.stats().appended_rows, b.stats().appended_rows);
  EXPECT_EQ(a.stats().admitted_dirty, b.stats().admitted_dirty);
  EXPECT_EQ(a.Snapshot().Serialize(), b.Snapshot().Serialize());

  // The full history — appends included — survives a serialize round-trip
  // into a third session.
  const auto reparsed = SessionSnapshot::Deserialize(a.Snapshot().Serialize());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  Table table_c = BaseDirty();
  GdrSession c(&table_c, &rules, TestOptions());
  ASSERT_TRUE(c.Restore(*reparsed).ok());
  EXPECT_EQ(TableCells(table_a), TableCells(table_c));
  EXPECT_EQ(c.stats().appended_rows, a.stats().appended_rows);
}

TEST(SessionAppendTest, CleanAppendCausesZeroRankingChurn) {
  const RuleSet rules = TestRules();
  const Truth truth = BaseTruth();

  // Control session: no appends at all.
  Table control_table = BaseDirty();
  GdrSession control(&control_table, &rules, TestOptions());
  ASSERT_TRUE(control.Start().ok());
  std::vector<std::string> control_trace;

  // Appending session: mid-batch, rows that violate no rule arrive.
  Table table = BaseDirty();
  GdrSession session(&table, &rules, TestOptions());
  ASSERT_TRUE(session.Start().ok());
  std::vector<std::string> trace;

  const auto control_batch = control.NextBatch();
  const auto batch = session.NextBatch();
  ASSERT_TRUE(control_batch.ok() && batch.ok());
  ASSERT_FALSE(batch->empty());

  const auto outcome = session.AppendDirtyRows(
      {{"Gary", "Z7", "IN"}, {"Gary", "Z7", "IN"}});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->rows_appended, 2u);
  EXPECT_EQ(outcome->newly_dirty, 0u);
  EXPECT_EQ(outcome->pool_delta, 0);
  EXPECT_EQ(outcome->groups_rescored, 0u);
  EXPECT_FALSE(outcome->revived);

  // Answer both sessions' batches with the same policy; every subsequent
  // suggestion must be identical — the clean rows changed nothing.
  Truth grown = truth;
  grown.push_back({"Gary", "Z7", "IN"});
  grown.push_back({"Gary", "Z7", "IN"});
  auto answer_batch = [&](GdrSession* s, const Truth& t,
                          const std::vector<SuggestedUpdate>& delivered,
                          std::vector<std::string>* out) {
    for (const SuggestedUpdate& u : delivered) {
      if (!s->IsLive(u.update_id)) continue;
      out->push_back(TraceLine(*s, u));
      const PolicyAnswer pa = Answer(s->table(), t, u);
      ASSERT_TRUE(
          s->SubmitFeedback(u.update_id, pa.feedback, pa.volunteered).ok());
    }
  };
  answer_batch(&control, truth, *control_batch, &control_trace);
  answer_batch(&session, grown, *batch, &trace);
  Drive(&control, truth, &control_trace);
  Drive(&session, grown, &trace);
  EXPECT_EQ(control_trace, trace);
  EXPECT_EQ(control.stats().user_feedback, session.stats().user_feedback);

  // The appended rows were never touched by the repair loop.
  EXPECT_EQ(table.at(6, 0), "Gary");
  EXPECT_EQ(table.at(6, 1), "Z7");
  EXPECT_EQ(table.num_rows(), 8u);
}

TEST(SessionAppendTest, AppendedRowJoinsExistingGroupAndRescores) {
  const RuleSet rules = TestRules();
  Table table = BaseDirty();
  GdrSession session(&table, &rules, TestOptions());
  ASSERT_TRUE(session.Start().ok());
  const auto batch = session.NextBatch();
  ASSERT_TRUE(batch.ok());
  ASSERT_FALSE(batch->empty());

  const std::map<std::pair<AttrId, ValueId>, std::size_t> before = [&] {
    std::map<std::pair<AttrId, ValueId>, std::size_t> sizes;
    for (const UpdateGroup& g : GroupUpdates(session.engine().pool())) {
      sizes[{g.attr, g.value}] = g.updates.size();
    }
    return sizes;
  }();

  // Another Springfield row with yet another wrong zip: its zip suggestion
  // lands in the existing (Zip := Z0) group (two dirty rows now back the
  // same correction), and the implicated partners get rescored.
  const auto outcome =
      session.AppendDirtyRows({{"Springfield", "Z8", "IL"}});
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->newly_dirty, 1u);
  EXPECT_GT(outcome->pool_delta, 0);
  EXPECT_GE(outcome->groups_rescored, 1u);

  bool some_group_grew = false;
  for (const UpdateGroup& g : GroupUpdates(session.engine().pool())) {
    const auto it = before.find({g.attr, g.value});
    if (it != before.end() && g.updates.size() > it->second) {
      some_group_grew = true;
    }
  }
  EXPECT_TRUE(some_group_grew);
}

TEST(SessionAppendTest, AppendAfterDoneRevivesTheLoop) {
  const RuleSet rules = TestRules();
  Truth truth = BaseTruth();
  Table table = BaseDirty();
  GdrSession session(&table, &rules, TestOptions());
  ASSERT_TRUE(session.Start().ok());
  std::vector<std::string> trace;
  Drive(&session, truth, &trace);
  ASSERT_EQ(session.state(), SessionState::kDone);
  const auto empty = session.NextBatch();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  // New dirt after completion re-arms the loop...
  const auto outcome = session.AppendDirtyRows(
      {{"Springfield", "Z9", "XX"}, {"Springfield", "Z0", "IL"}});
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->revived);
  EXPECT_GE(outcome->newly_dirty, 1u);
  EXPECT_NE(session.state(), SessionState::kDone);

  // ...and the revived loop repairs the arrival like any other dirty row.
  truth.push_back({"Springfield", "Z0", "IL"});
  truth.push_back({"Springfield", "Z0", "IL"});
  Drive(&session, truth, &trace);
  EXPECT_EQ(session.state(), SessionState::kDone);
  const RowId revived_row = 6;
  EXPECT_EQ(table.at(revived_row, 1), "Z0");
  EXPECT_EQ(table.at(revived_row, 2), "IL");

  // Appending rows that violate nothing after kDone does not revive.
  const auto clean = session.AppendDirtyRows({{"Gary", "Z7", "IN"}});
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->revived);
  EXPECT_EQ(session.state(), SessionState::kDone);
}

TEST(SessionAppendTest, AppendRequiresStartAndValidatesArity) {
  const RuleSet rules = TestRules();
  Table table = BaseDirty();
  GdrSession session(&table, &rules, TestOptions());
  EXPECT_FALSE(session.AppendDirtyRows({{"Gary", "Z7", "IN"}}).ok());
  ASSERT_TRUE(session.Start().ok());

  // All-or-nothing surfaces through the session too.
  const std::size_t rows_before = table.num_rows();
  const auto bad =
      session.AppendDirtyRows({{"Gary", "Z7", "IN"}, {"short", "row"}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(table.num_rows(), rows_before);

  // An empty append is a no-op, not an event.
  const auto none = session.AppendDirtyRows({});
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->rows_appended, 0u);
  EXPECT_EQ(session.Snapshot().events.size(), 0u);
}

}  // namespace
}  // namespace gdr
